//! BNN arithmetic: Eq. 1 of the paper and reference (software) kernels.
//!
//! The central identity (paper Eq. 1) relates the bipolar dot product used
//! by BNN theory to the XNOR + popcount realized in hardware:
//!
//! ```text
//! In ⊛ W = 2 × Popcount(In' ⊙ W') − VectorLength
//! ```
//!
//! where `In'`/`W'` are the {0,1} encodings of the bipolar {−1,+1} vectors
//! and `⊙` is element-wise XNOR. These functions are the golden reference
//! that every crossbar mapping in the workspace is tested against.

use crate::bits::{iter_set_bits, BitVec, WORD_BITS};
use crate::matrix::BitMatrix;

/// Word-level `popcount(a ⊙ b)` over raw packed words.
///
/// Both slices must have their bits past `len` cleared (the invariant
/// [`BitVec`] and [`BitMatrix`] maintain): XNOR turns the shared zero
/// padding into ones, so the padding contribution is a compile-time
/// constant (`words·64 − len`) subtracted at the end. No intermediate
/// vector is materialized — this is the innermost loop of every binary
/// kernel below. On x86-64 with `AVX512VPOPCNTDQ` the agreement count is
/// computed eight words per instruction; elsewhere a scalar
/// `count_ones` loop is used.
///
/// # Panics
///
/// Panics if the word counts differ (the SIMD path reads whole slices,
/// so this must hold even in release builds).
#[inline]
pub fn xnor_popcount_words(a: &[u64], b: &[u64], len: usize) -> u32 {
    assert_eq!(a.len(), b.len(), "word count mismatch");
    xnor_agree_words(a, b) - (a.len() * WORD_BITS - len) as u32
}

/// Signature of an agreement-count kernel over equal-length word slices.
type AgreeFn = fn(&[u64], &[u64]) -> u32;

/// Picks the agreement kernel for rows of `words` packed words: the
/// AVX-512 path when the CPU supports it and the rows are long enough to
/// amortize the vector setup, the scalar loop otherwise. Feature
/// detection is memoized, and the matrix kernels hoist this choice out
/// of their row loops so the inner loop stays branch-free.
fn agree_kernel(words: usize) -> AgreeFn {
    #[cfg(target_arch = "x86_64")]
    if words >= 8 && avx512_popcount_available() {
        // SAFETY: both required features were detected at runtime.
        return |a, b| unsafe { xnor_agree_avx512(a, b) };
    }
    let _ = words;
    xnor_agree_scalar
}

/// Memoized runtime check for `avx512f` + `avx512vpopcntdq`.
#[cfg(target_arch = "x86_64")]
fn avx512_popcount_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
    })
}

/// Number of agreeing bit positions over whole words (padding included).
#[inline]
fn xnor_agree_words(a: &[u64], b: &[u64]) -> u32 {
    agree_kernel(a.len())(a, b)
}

#[inline]
fn xnor_agree_scalar(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (!(x ^ y)).count_ones()).sum()
}

/// AVX-512 agreement count: XNOR + vectorized popcount, 8 words/lane-op.
///
/// # Safety
///
/// Requires `avx512f` and `avx512vpopcntdq` at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn xnor_agree_avx512(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::{
        _mm512_add_epi64, _mm512_loadu_si512, _mm512_popcnt_epi64, _mm512_reduce_add_epi64,
        _mm512_set1_epi64, _mm512_setzero_si512, _mm512_xor_si512,
    };
    let chunks = a.len() / 8;
    let mut acc = _mm512_setzero_si512();
    let ones = _mm512_set1_epi64(-1);
    for i in 0..chunks {
        let va = _mm512_loadu_si512(a.as_ptr().add(i * 8).cast());
        let vb = _mm512_loadu_si512(b.as_ptr().add(i * 8).cast());
        let xnor = _mm512_xor_si512(_mm512_xor_si512(va, vb), ones);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(xnor));
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u64;
    for i in chunks * 8..a.len() {
        total += u64::from((!(a[i] ^ b[i])).count_ones());
    }
    total as u32
}

/// `Popcount(a ⊙ b)`: the number of agreeing positions.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// use eb_bitnn::{ops, BitVec};
/// let a = BitVec::from_bools(&[true, false, true, true]);
/// let b = BitVec::from_bools(&[true, true, true, false]);
/// assert_eq!(ops::xnor_popcount(&a, &b), 2);
/// ```
pub fn xnor_popcount(a: &BitVec, b: &BitVec) -> u32 {
    assert_eq!(a.len(), b.len(), "xnor length mismatch");
    xnor_popcount_words(a.words(), b.words(), a.len())
}

/// The bipolar dot product `Σ aᵢ·bᵢ` with `aᵢ, bᵢ ∈ {−1, +1}`, computed via
/// Eq. 1 (`2·popcount(a ⊙ b) − len`).
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// use eb_bitnn::{ops, BitVec};
/// let a = BitVec::from_bipolar(&[1, -1, 1]);
/// let b = BitVec::from_bipolar(&[1, 1, 1]);
/// assert_eq!(ops::bipolar_dot(&a, &b), 1); // 1 - 1 + 1
/// ```
pub fn bipolar_dot(a: &BitVec, b: &BitVec) -> i32 {
    2 * xnor_popcount(a, b) as i32 - a.len() as i32
}

/// Naive scalar-by-scalar bipolar dot product, used only to cross-check
/// [`bipolar_dot`] in tests (no packing tricks).
pub fn bipolar_dot_naive(a: &BitVec, b: &BitVec) -> i32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.to_bipolar()
        .iter()
        .zip(b.to_bipolar())
        .map(|(&x, y)| i32::from(x) * i32::from(y))
        .sum()
}

/// Binary linear kernel: for each weight vector (row of `weights`,
/// fan-in = `input.len()`), the XNOR popcount with `input`.
///
/// This is what one TacitMap crossbar activation computes across its
/// columns in a single step. Runs word-level over the borrowed matrix
/// rows ([`BitMatrix::row_words`]) — no per-row `BitVec` is materialized.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn binary_linear_popcounts(input: &BitVec, weights: &BitMatrix) -> Vec<u32> {
    let mut out = Vec::new();
    binary_linear_popcounts_into(input, weights, &mut out);
    out
}

/// [`binary_linear_popcounts`] writing into a caller-owned buffer, which
/// is cleared and refilled — the allocation-free form the scratch-reusing
/// inference path runs on.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn binary_linear_popcounts_into(input: &BitVec, weights: &BitMatrix, out: &mut Vec<u32>) {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    let words = input.words();
    let pad = (words.len() * WORD_BITS - input.len()) as u32;
    let agree = agree_kernel(words.len());
    out.clear();
    out.extend((0..weights.rows()).map(|r| agree(words, weights.row_words(r)) - pad));
}

/// Binary linear kernel in the bipolar domain (pre-activation values fed
/// to batch-norm + sign in a BNN hidden layer): `2·pop − m` per output.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn binary_linear_preacts(input: &BitVec, weights: &BitMatrix) -> Vec<i32> {
    let m = input.len() as i32;
    binary_linear_popcounts(input, weights)
        .into_iter()
        .map(|pop| 2 * pop as i32 - m)
        .collect()
}

/// Number of input rows processed per block of the blocked MMM kernel:
/// small enough that a block of packed input rows stays resident in L1
/// while the weight matrix streams through once per block.
const MMM_ROW_BLOCK: usize = 8;

/// Binary matrix–matrix kernel: `inputs` (one input vector per row)
/// against `weights` (one weight vector per row). Element `(i, j)` is
/// `popcount(inputs[i] ⊙ weights[j])`.
///
/// This is what one WDM-enabled EinsteinBarrier MMM step computes when
/// `inputs.rows() ≤ K`, and the GEMM behind the packed-im2col convolution
/// path. The loop is blocked over input rows (`MMM_ROW_BLOCK` at a
/// time) so each streamed weight row is reused against a cache-resident
/// block of inputs, and runs entirely on borrowed words.
///
/// # Panics
///
/// Panics if the fan-ins differ.
pub fn binary_mmm_popcounts(inputs: &BitMatrix, weights: &BitMatrix) -> Vec<Vec<u32>> {
    assert_eq!(inputs.cols(), weights.cols(), "fan-in mismatch");
    let n = weights.rows();
    let pad = (inputs.words_per_row() * WORD_BITS - inputs.cols()) as u32;
    let agree = agree_kernel(inputs.words_per_row());
    let mut out = vec![vec![0u32; n]; inputs.rows()];
    for i0 in (0..inputs.rows()).step_by(MMM_ROW_BLOCK) {
        let i1 = (i0 + MMM_ROW_BLOCK).min(inputs.rows());
        for j in 0..n {
            let w = weights.row_words(j);
            for i in i0..i1 {
                out[i][j] = agree(inputs.row_words(i), w) - pad;
            }
        }
    }
    out
}

/// [`binary_mmm_popcounts`] writing a single flat row-major
/// `inputs.rows() × weights.rows()` buffer, which is cleared and
/// refilled — no per-row `Vec`, the form the scratch-reusing conv path
/// runs on. Same blocked loop, same values: element `(i, j)` lands at
/// `out[i·weights.rows() + j]`.
///
/// # Panics
///
/// Panics if the fan-ins differ.
pub fn binary_mmm_popcounts_into(inputs: &BitMatrix, weights: &BitMatrix, out: &mut Vec<u32>) {
    assert_eq!(inputs.cols(), weights.cols(), "fan-in mismatch");
    let n = weights.rows();
    let pad = (inputs.words_per_row() * WORD_BITS - inputs.cols()) as u32;
    let agree = agree_kernel(inputs.words_per_row());
    out.clear();
    out.resize(inputs.rows() * n, 0);
    for i0 in (0..inputs.rows()).step_by(MMM_ROW_BLOCK) {
        let i1 = (i0 + MMM_ROW_BLOCK).min(inputs.rows());
        for j in 0..n {
            let w = weights.row_words(j);
            for i in i0..i1 {
                out[i * n + j] = agree(inputs.row_words(i), w) - pad;
            }
        }
    }
}

/// Fixed-point linear kernel for the (non-binarized) first layer: 8-bit
/// activations against bipolar (±1) weights. Returns integer accumulators.
///
/// Uses the identity `Σ xᵢ·wᵢ = 2·Σ_{wᵢ=+1} xᵢ − Σ xᵢ` (with `wᵢ ∈ ±1`):
/// the full input sum is computed once, and each weight row only touches
/// the activations under its *set* bits, walked word-by-word with
/// `trailing_zeros` — no per-element sign branch.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn fixed_linear_preacts(input: &[i16], weights: &BitMatrix) -> Vec<i32> {
    let mut out = Vec::new();
    fixed_linear_preacts_into(input, weights, &mut out);
    out
}

/// [`fixed_linear_preacts`] writing into a caller-owned buffer, which is
/// cleared and refilled — the allocation-free form the scratch-reusing
/// inference path runs on.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn fixed_linear_preacts_into(input: &[i16], weights: &BitMatrix, out: &mut Vec<i32>) {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    let total: i32 = input.iter().map(|&x| i32::from(x)).sum();
    out.clear();
    out.extend((0..weights.rows()).map(|r| {
        let plus: i32 = iter_set_bits(weights.row_words(r))
            .map(|i| i32::from(input[i]))
            .sum();
        2 * plus - total
    }));
}

/// Naive element-wise fixed-point kernel, used only to cross-check
/// [`fixed_linear_preacts`] in tests (no packing tricks).
pub fn fixed_linear_preacts_naive(input: &[i16], weights: &BitMatrix) -> Vec<i32> {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    weights
        .iter_rows()
        .map(|w| {
            input
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let sign = if w.get(i) == Some(true) { 1 } else { -1 };
                    i32::from(x) * sign
                })
                .sum()
        })
        .collect()
}

/// Fixed-point output kernel for the last layer: binary activations against
/// real-valued weights, producing logits.
///
/// # Panics
///
/// Panics if `weights` rows do not have `input.len()` entries.
pub fn output_logits(input: &BitVec, weights: &[Vec<f32>], bias: &[f32]) -> Vec<f32> {
    assert_eq!(weights.len(), bias.len(), "weight/bias count mismatch");
    weights
        .iter()
        .zip(bias)
        .map(|(row, &b)| {
            assert_eq!(row.len(), input.len(), "fan-in mismatch");
            let acc: f32 = row
                .iter()
                .enumerate()
                .map(|(i, &w)| if input.get(i) == Some(true) { w } else { -w })
                .sum();
            acc + b
        })
        .collect()
}

/// Numerically stable softmax over logits, in place: each element is
/// replaced by `exp(x − max) / Σ exp(x − max)`.
///
/// The arithmetic (max subtraction, exponentiation, one sequential sum,
/// division) performs exactly the same float operations in the same
/// order as the out-of-place [`softmax`], so the two are bit-identical —
/// the trainer relies on that to keep its batched loss path equal to the
/// seed per-sample path.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Numerically stable softmax, returning a fresh probability vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Index of the maximum element (argmax); ties resolve to the first.
///
/// Returns `None` for an empty slice.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_identity_on_examples() {
        let a = BitVec::from_bools(&[true, false, true, true, false]);
        let b = BitVec::from_bools(&[true, true, false, true, false]);
        assert_eq!(bipolar_dot(&a, &b), bipolar_dot_naive(&a, &b));
    }

    #[test]
    fn eq1_identity_exhaustive_small() {
        // Exhaust all pairs of 6-bit vectors: 4096 combinations.
        for x in 0u64..64 {
            for y in 0u64..64 {
                let a = BitVec::from_words(vec![x], 6);
                let b = BitVec::from_words(vec![y], 6);
                assert_eq!(bipolar_dot(&a, &b), bipolar_dot_naive(&a, &b));
            }
        }
    }

    #[test]
    fn self_dot_is_length() {
        let v = BitVec::from_bools(&[true, false, true, false, false, true, true]);
        assert_eq!(bipolar_dot(&v, &v), v.len() as i32);
        assert_eq!(bipolar_dot(&v, &v.complement()), -(v.len() as i32));
    }

    #[test]
    fn linear_popcounts_match_rowwise() {
        let w = BitMatrix::from_fn(4, 9, |r, c| (r * c) % 3 == 1);
        let x = BitVec::from_bools(&[true, true, false, true, false, false, true, false, true]);
        let pops = binary_linear_popcounts(&x, &w);
        for (r, p) in pops.iter().enumerate() {
            assert_eq!(*p, xnor_popcount(&x, &w.row(r)));
        }
        let pre = binary_linear_preacts(&x, &w);
        for (r, v) in pre.iter().enumerate() {
            assert_eq!(*v, 2 * pops[r] as i32 - 9);
        }
    }

    #[test]
    fn mmm_equals_stacked_vmms() {
        let w = BitMatrix::from_fn(5, 16, |r, c| (r + 2 * c) % 4 == 0);
        let xs = BitMatrix::from_fn(3, 16, |r, c| (r * 7 + c) % 5 < 2);
        let mmm = binary_mmm_popcounts(&xs, &w);
        assert_eq!(mmm.len(), 3);
        for (i, row) in mmm.iter().enumerate() {
            assert_eq!(*row, binary_linear_popcounts(&xs.row(i), &w));
        }
    }

    #[test]
    fn fixed_linear_matches_manual() {
        let w = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false, true]),
            BitVec::from_bools(&[false, false, true]),
        ]);
        let x = [10i16, -3, 5];
        let pre = fixed_linear_preacts(&x, &w);
        assert_eq!(pre, vec![10 + 3 + 5, -10 + 3 + 5]);
    }

    #[test]
    fn output_logits_sign_weighted() {
        let x = BitVec::from_bools(&[true, false]);
        let w = vec![vec![0.5f32, 1.0], vec![-1.0, 2.0]];
        let b = vec![0.1f32, -0.2];
        let logits = output_logits(&x, &w, &b);
        assert!((logits[0] - (0.5 - 1.0 + 0.1)).abs() < 1e-6);
        assert!((logits[1] - (-1.0 - 2.0 - 0.2)).abs() < 1e-6);
        assert_eq!(argmax(&logits), Some(0));
    }

    #[test]
    fn word_kernel_handles_tail_words_exactly() {
        // Lengths straddling word boundaries: the padding correction must
        // be exact for every residue.
        for len in [1usize, 63, 64, 65, 127, 128, 129, 300] {
            let a = BitVec::from_bools(&(0..len).map(|i| i % 3 == 0).collect::<Vec<_>>());
            let b = BitVec::from_bools(&(0..len).map(|i| i % 5 != 1).collect::<Vec<_>>());
            let agree = (0..len).filter(|&i| a.get(i) == b.get(i)).count() as u32;
            assert_eq!(xnor_popcount(&a, &b), agree, "len {len}");
            assert_eq!(
                xnor_popcount_words(a.words(), b.words(), len),
                agree,
                "raw len {len}"
            );
        }
    }

    #[test]
    fn simd_and_scalar_agreement_counts_match() {
        // Word counts straddling the 8-word SIMD chunk boundary; the
        // dispatcher must agree with the scalar loop everywhere.
        for words in [1usize, 7, 8, 9, 15, 16, 17, 33] {
            let a: Vec<u64> = (0..words)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..words)
                .map(|i| (i as u64).wrapping_mul(0x85EB_CA6B) ^ 0xFFFF)
                .collect();
            assert_eq!(
                xnor_agree_words(&a, &b),
                xnor_agree_scalar(&a, &b),
                "words {words}"
            );
        }
    }

    #[test]
    fn blocked_mmm_matches_rowwise_on_odd_shapes() {
        // Shapes that are not multiples of the row block exercise the
        // partial final block.
        for rows in [1usize, 7, 8, 9, 17] {
            let w = BitMatrix::from_fn(11, 70, |r, c| (r * 3 + c) % 4 == 0);
            let xs = BitMatrix::from_fn(rows, 70, |r, c| (r * 13 + c * 7) % 5 < 2);
            let mmm = binary_mmm_popcounts(&xs, &w);
            for i in 0..rows {
                assert_eq!(mmm[i], binary_linear_popcounts(&xs.row(i), &w), "row {i}");
            }
        }
    }

    #[test]
    fn fixed_kernel_matches_naive_reference() {
        let w = BitMatrix::from_fn(9, 131, |r, c| (r * 7 + c * 3) % 4 != 1);
        let input: Vec<i16> = (0..131).map(|i| ((i * 37) % 255) as i16 - 127).collect();
        assert_eq!(
            fixed_linear_preacts(&input, &w),
            fixed_linear_preacts_naive(&input, &w)
        );
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let w = BitMatrix::from_fn(6, 70, |r, c| (r * 3 + c) % 4 == 0);
        let x = BitVec::from_bools(&(0..70).map(|i| i % 3 != 1).collect::<Vec<_>>());
        let mut pops = vec![99u32; 3];
        binary_linear_popcounts_into(&x, &w, &mut pops);
        assert_eq!(pops, binary_linear_popcounts(&x, &w));

        let q: Vec<i16> = (0..70).map(|i| ((i * 31) % 200) as i16 - 100).collect();
        let mut pre = Vec::new();
        fixed_linear_preacts_into(&q, &w, &mut pre);
        assert_eq!(pre, fixed_linear_preacts(&q, &w));

        let xs = BitMatrix::from_fn(5, 70, |r, c| (r * 13 + c * 7) % 5 < 2);
        let mut flat = vec![7u32; 2];
        binary_mmm_popcounts_into(&xs, &w, &mut flat);
        let nested = binary_mmm_popcounts(&xs, &w);
        assert_eq!(flat.len(), 5 * 6);
        for (i, row) in nested.iter().enumerate() {
            assert_eq!(&flat[i * 6..(i + 1) * 6], &row[..], "row {i}");
        }
    }

    #[test]
    fn softmax_normalizes_and_in_place_is_bit_identical() {
        let logits = [1.0f32, 2.0, 3.0, -0.5];
        let p = softmax(&logits);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        let mut q = logits;
        softmax_in_place(&mut q);
        for (a, b) in p.iter().zip(&q) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }

    #[test]
    fn argmax_edge_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 1.0]), Some(0));
        assert_eq!(argmax(&[-1.0, 3.0, 2.0]), Some(1));
    }
}
