//! BNN arithmetic: Eq. 1 of the paper and reference (software) kernels.
//!
//! The central identity (paper Eq. 1) relates the bipolar dot product used
//! by BNN theory to the XNOR + popcount realized in hardware:
//!
//! ```text
//! In ⊛ W = 2 × Popcount(In' ⊙ W') − VectorLength
//! ```
//!
//! where `In'`/`W'` are the {0,1} encodings of the bipolar {−1,+1} vectors
//! and `⊙` is element-wise XNOR. These functions are the golden reference
//! that every crossbar mapping in the workspace is tested against.

use crate::bits::BitVec;
use crate::matrix::BitMatrix;

/// `Popcount(a ⊙ b)`: the number of agreeing positions.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// use eb_bitnn::{ops, BitVec};
/// let a = BitVec::from_bools(&[true, false, true, true]);
/// let b = BitVec::from_bools(&[true, true, true, false]);
/// assert_eq!(ops::xnor_popcount(&a, &b), 2);
/// ```
pub fn xnor_popcount(a: &BitVec, b: &BitVec) -> u32 {
    a.xnor(b).popcount()
}

/// The bipolar dot product `Σ aᵢ·bᵢ` with `aᵢ, bᵢ ∈ {−1, +1}`, computed via
/// Eq. 1 (`2·popcount(a ⊙ b) − len`).
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// use eb_bitnn::{ops, BitVec};
/// let a = BitVec::from_bipolar(&[1, -1, 1]);
/// let b = BitVec::from_bipolar(&[1, 1, 1]);
/// assert_eq!(ops::bipolar_dot(&a, &b), 1); // 1 - 1 + 1
/// ```
pub fn bipolar_dot(a: &BitVec, b: &BitVec) -> i32 {
    2 * xnor_popcount(a, b) as i32 - a.len() as i32
}

/// Naive scalar-by-scalar bipolar dot product, used only to cross-check
/// [`bipolar_dot`] in tests (no packing tricks).
pub fn bipolar_dot_naive(a: &BitVec, b: &BitVec) -> i32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.to_bipolar()
        .iter()
        .zip(b.to_bipolar())
        .map(|(&x, y)| i32::from(x) * i32::from(y))
        .sum()
}

/// Reference binary linear kernel: for each weight vector (row of
/// `weights`, fan-in = `input.len()`), the XNOR popcount with `input`.
///
/// This is what one TacitMap crossbar activation computes across its
/// columns in a single step.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn binary_linear_popcounts(input: &BitVec, weights: &BitMatrix) -> Vec<u32> {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    weights.iter_rows().map(|w| xnor_popcount(input, &w)).collect()
}

/// Reference binary linear kernel in the bipolar domain (pre-activation
/// values fed to batch-norm + sign in a BNN hidden layer).
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn binary_linear_preacts(input: &BitVec, weights: &BitMatrix) -> Vec<i32> {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    weights.iter_rows().map(|w| bipolar_dot(input, &w)).collect()
}

/// Reference binary matrix–matrix kernel: `inputs` (one input vector per
/// row) against `weights` (one weight vector per row). Element `(i, j)` is
/// `popcount(inputs[i] ⊙ weights[j])`.
///
/// This is what one WDM-enabled EinsteinBarrier MMM step computes when
/// `inputs.rows() ≤ K`.
///
/// # Panics
///
/// Panics if the fan-ins differ.
pub fn binary_mmm_popcounts(inputs: &BitMatrix, weights: &BitMatrix) -> Vec<Vec<u32>> {
    assert_eq!(inputs.cols(), weights.cols(), "fan-in mismatch");
    inputs
        .iter_rows()
        .map(|inp| binary_linear_popcounts(&inp, weights))
        .collect()
}

/// Fixed-point linear kernel for the (non-binarized) first layer: 8-bit
/// activations against bipolar (±1) weights. Returns integer accumulators.
///
/// # Panics
///
/// Panics if `weights.cols() != input.len()`.
pub fn fixed_linear_preacts(input: &[i16], weights: &BitMatrix) -> Vec<i32> {
    assert_eq!(weights.cols(), input.len(), "fan-in mismatch");
    weights
        .iter_rows()
        .map(|w| {
            input
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let sign = if w.get(i) == Some(true) { 1 } else { -1 };
                    i32::from(x) * sign
                })
                .sum()
        })
        .collect()
}

/// Fixed-point output kernel for the last layer: binary activations against
/// real-valued weights, producing logits.
///
/// # Panics
///
/// Panics if `weights` rows do not have `input.len()` entries.
pub fn output_logits(input: &BitVec, weights: &[Vec<f32>], bias: &[f32]) -> Vec<f32> {
    assert_eq!(weights.len(), bias.len(), "weight/bias count mismatch");
    weights
        .iter()
        .zip(bias)
        .map(|(row, &b)| {
            assert_eq!(row.len(), input.len(), "fan-in mismatch");
            let acc: f32 = row
                .iter()
                .enumerate()
                .map(|(i, &w)| if input.get(i) == Some(true) { w } else { -w })
                .sum();
            acc + b
        })
        .collect()
}

/// Index of the maximum element (argmax); ties resolve to the first.
///
/// Returns `None` for an empty slice.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_identity_on_examples() {
        let a = BitVec::from_bools(&[true, false, true, true, false]);
        let b = BitVec::from_bools(&[true, true, false, true, false]);
        assert_eq!(bipolar_dot(&a, &b), bipolar_dot_naive(&a, &b));
    }

    #[test]
    fn eq1_identity_exhaustive_small() {
        // Exhaust all pairs of 6-bit vectors: 4096 combinations.
        for x in 0u64..64 {
            for y in 0u64..64 {
                let a = BitVec::from_words(vec![x], 6);
                let b = BitVec::from_words(vec![y], 6);
                assert_eq!(bipolar_dot(&a, &b), bipolar_dot_naive(&a, &b));
            }
        }
    }

    #[test]
    fn self_dot_is_length() {
        let v = BitVec::from_bools(&[true, false, true, false, false, true, true]);
        assert_eq!(bipolar_dot(&v, &v), v.len() as i32);
        assert_eq!(bipolar_dot(&v, &v.complement()), -(v.len() as i32));
    }

    #[test]
    fn linear_popcounts_match_rowwise() {
        let w = BitMatrix::from_fn(4, 9, |r, c| (r * c) % 3 == 1);
        let x = BitVec::from_bools(&[true, true, false, true, false, false, true, false, true]);
        let pops = binary_linear_popcounts(&x, &w);
        for (r, p) in pops.iter().enumerate() {
            assert_eq!(*p, xnor_popcount(&x, &w.row(r)));
        }
        let pre = binary_linear_preacts(&x, &w);
        for (r, v) in pre.iter().enumerate() {
            assert_eq!(*v, 2 * pops[r] as i32 - 9);
        }
    }

    #[test]
    fn mmm_equals_stacked_vmms() {
        let w = BitMatrix::from_fn(5, 16, |r, c| (r + 2 * c) % 4 == 0);
        let xs = BitMatrix::from_fn(3, 16, |r, c| (r * 7 + c) % 5 < 2);
        let mmm = binary_mmm_popcounts(&xs, &w);
        assert_eq!(mmm.len(), 3);
        for (i, row) in mmm.iter().enumerate() {
            assert_eq!(*row, binary_linear_popcounts(&xs.row(i), &w));
        }
    }

    #[test]
    fn fixed_linear_matches_manual() {
        let w = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false, true]),
            BitVec::from_bools(&[false, false, true]),
        ]);
        let x = [10i16, -3, 5];
        let pre = fixed_linear_preacts(&x, &w);
        assert_eq!(pre, vec![10 + 3 + 5, -10 + 3 + 5]);
    }

    #[test]
    fn output_logits_sign_weighted() {
        let x = BitVec::from_bools(&[true, false]);
        let w = vec![vec![0.5f32, 1.0], vec![-1.0, 2.0]];
        let b = vec![0.1f32, -0.2];
        let logits = output_logits(&x, &w, &b);
        assert!((logits[0] - (0.5 - 1.0 + 0.1)).abs() < 1e-6);
        assert!((logits[1] - (-1.0 - 2.0 - 0.2)).abs() < 1e-6);
        assert_eq!(argmax(&logits), Some(0));
    }

    #[test]
    fn argmax_edge_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 1.0]), Some(0));
        assert_eq!(argmax(&[-1.0, 3.0, 2.0]), Some(1));
    }
}
