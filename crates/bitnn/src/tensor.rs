//! Minimal dense `f32` tensor used by the trainer and the non-binarized
//! first/last layers. Row-major, up to rank 4.

use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use eb_bitnn::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates an all-zero tensor with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape changes element count"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a rank-2 index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of range.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a rank-2 tensor");
        self.data[i * self.shape[1] + j]
    }

    /// Element at a rank-3 index `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of range.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 requires a rank-3 tensor");
        self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scales all elements by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Quantizes to signed fixed point with `bits` total bits, mapping the
    /// range `[-max_abs, max_abs]` onto the representable integers.
    ///
    /// This models the DAC input quantization of the higher-precision first
    /// layer (paper Section II-B).
    pub fn quantize(&self, bits: u8) -> Vec<i16> {
        let mut out = Vec::new();
        self.quantize_into(bits, &mut out);
        out
    }

    /// [`Tensor::quantize`] writing into a caller-owned buffer, which is
    /// cleared and refilled — the allocation-free form the scratch-reusing
    /// inference path runs on.
    pub fn quantize_into(&self, bits: u8, out: &mut Vec<i16>) {
        let max = self.max_abs().max(1e-12);
        let q = f32::from((1i16 << (bits - 1)) - 1);
        out.clear();
        out.extend(
            self.data
                .iter()
                .map(|&x| ((x / max * q).round().clamp(-q, q)) as i16),
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(shape={:?}, first={:?})",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_and_indexing() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at2(0, 0), 1.0);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    fn at3_indexing() {
        let t = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(1, 1, 1), 7.0);
        assert_eq!(t.at3(1, 0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert!((a.mean() - 2.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 3.0);
    }

    #[test]
    fn quantize_symmetric() {
        let t = Tensor::from_vec(&[3], vec![-1.0, 0.0, 1.0]);
        let q = t.quantize(8);
        assert_eq!(q, vec![-127, 0, 127]);
        let q4 = t.quantize(4);
        assert_eq!(q4, vec![-7, 0, 7]);
    }
}
