//! Shaped binary activation tensors for convolutional BNN layers.

use crate::bits::BitVec;
use crate::matrix::BitMatrix;
use std::fmt;

/// A binary activation tensor with shape `(channels, height, width)`.
///
/// Element order is channel-major (`c`, then `h`, then `w`), matching the
/// flattening used when a conv feature map feeds a fully connected layer.
///
/// # Examples
///
/// ```
/// use eb_bitnn::BitTensor;
///
/// let mut t = BitTensor::zeros(2, 3, 3);
/// t.set(1, 2, 0, true);
/// assert_eq!(t.get(1, 2, 0), Some(true));
/// assert_eq!(t.flatten().len(), 18);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitTensor {
    channels: usize,
    height: usize,
    width: usize,
    bits: BitVec,
}

impl BitTensor {
    /// Creates an all-zero tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            bits: BitVec::zeros(channels * height * width),
        }
    }

    /// Wraps a flat bit vector as a shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != channels * height * width`.
    pub fn from_bits(channels: usize, height: usize, width: usize, bits: BitVec) -> Self {
        assert_eq!(
            bits.len(),
            channels * height * width,
            "bit count does not match shape"
        );
        Self {
            channels,
            height,
            width,
            bits,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    fn index(&self, c: usize, h: usize, w: usize) -> usize {
        (c * self.height + h) * self.width + w
    }

    /// Reads the bit at `(c, h, w)`, or `None` when out of range.
    pub fn get(&self, c: usize, h: usize, w: usize) -> Option<bool> {
        if c >= self.channels || h >= self.height || w >= self.width {
            return None;
        }
        self.bits.get(self.index(c, h, w))
    }

    /// Sets the bit at `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, c: usize, h: usize, w: usize, value: bool) {
        assert!(
            c < self.channels && h < self.height && w < self.width,
            "({c}, {h}, {w}) out of range"
        );
        let i = self.index(c, h, w);
        self.bits.set(i, value);
    }

    /// Flattens to a channel-major [`BitVec`] (cheap clone of the storage).
    pub fn flatten(&self) -> BitVec {
        self.bits.clone()
    }

    /// im2col for binary tensors: extracts every `k×k` sliding window at
    /// stride `stride` with zero padding `pad` (pad bits read as 0, i.e.
    /// bipolar −1) into the rows of a [`BitMatrix`].
    ///
    /// Each output row has length `channels · k · k`; rows are ordered
    /// top-to-bottom, left-to-right. The returned matrix multiplied against
    /// flattened filters reproduces the direct convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn im2col(&self, k: usize, stride: usize, pad: usize) -> BitMatrix {
        let mut m = BitMatrix::default();
        self.im2col_into(k, stride, pad, &mut m);
        m
    }

    /// [`BitTensor::im2col`] writing into a caller-owned matrix, which is
    /// [`BitMatrix::reset`] to the window shape and refilled — the
    /// allocation-free form the scratch-reusing conv path runs on.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn im2col_into(&self, k: usize, stride: usize, pad: usize, m: &mut BitMatrix) {
        let (oh, ow) = conv_output_dims(self.height, self.width, k, stride, pad);
        m.reset(oh * ow, self.channels * k * k);
        let words = self.bits.words();
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                // The kx range whose source column stays inside the map:
                // everything else is zero padding and stays cleared.
                let x0 = (ox * stride) as isize - pad as isize;
                let kx_lo = (-x0).clamp(0, k as isize) as usize;
                let kx_hi = (self.width as isize - x0).clamp(0, k as isize) as usize;
                if kx_lo >= kx_hi {
                    continue;
                }
                for c in 0..self.channels {
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy as usize >= self.height {
                            continue;
                        }
                        // One contiguous run of kx_hi − kx_lo source bits
                        // per (channel, kernel-row): a word-level OR copy
                        // instead of per-bit get/set.
                        let src_off = (c * self.height + iy as usize) * self.width
                            + (x0 + kx_lo as isize) as usize;
                        let dst_off = (c * k + ky) * k + kx_lo;
                        m.or_bits_into_row(row, dst_off, words, src_off, kx_hi - kx_lo);
                    }
                }
            }
        }
    }

    /// 2×2 max pooling with stride 2 (logical OR of the window, since in
    /// the {0,1} encoding `max` over bipolar values is OR over bits).
    ///
    /// Odd trailing rows/columns are truncated, as in common BNN stacks.
    pub fn max_pool_2x2(&self) -> Self {
        let oh = self.height / 2;
        let ow = self.width / 2;
        let mut out = Self::zeros(self.channels, oh, ow);
        for c in 0..self.channels {
            for y in 0..oh {
                for x in 0..ow {
                    let any = self.get(c, 2 * y, 2 * x) == Some(true)
                        || self.get(c, 2 * y, 2 * x + 1) == Some(true)
                        || self.get(c, 2 * y + 1, 2 * x) == Some(true)
                        || self.get(c, 2 * y + 1, 2 * x + 1) == Some(true);
                    if any {
                        out.set(c, y, x, true);
                    }
                }
            }
        }
        out
    }

    /// Fraction of set bits, useful as a quick activation statistic.
    pub fn density(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            f64::from(self.bits.popcount()) / self.bits.len() as f64
        }
    }
}

impl fmt::Debug for BitTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitTensor({}×{}×{}, density={:.2})",
            self.channels,
            self.height,
            self.width,
            self.density()
        )
    }
}

/// Output spatial dimensions of a convolution.
///
/// # Panics
///
/// Panics if the kernel does not fit the padded input or `stride == 0`.
pub fn conv_output_dims(
    height: usize,
    width: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    assert!(
        height + 2 * pad >= k && width + 2 * pad >= k,
        "kernel {k} does not fit padded input {height}×{width} (pad {pad})"
    );
    (
        (height + 2 * pad - k) / stride + 1,
        (width + 2 * pad - k) / stride + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn shape_and_indexing() {
        let mut t = BitTensor::zeros(3, 4, 5);
        assert_eq!(t.len(), 60);
        t.set(2, 3, 4, true);
        assert_eq!(t.get(2, 3, 4), Some(true));
        assert_eq!(t.get(2, 3, 5), None);
        assert_eq!(t.flatten().popcount(), 1);
        // channel-major flattening: last element of the flat vector.
        assert_eq!(t.flatten().get(59), Some(true));
    }

    #[test]
    fn conv_dims() {
        assert_eq!(conv_output_dims(28, 28, 5, 1, 0), (24, 24));
        assert_eq!(conv_output_dims(32, 32, 3, 1, 1), (32, 32));
        assert_eq!(conv_output_dims(8, 8, 2, 2, 0), (4, 4));
    }

    #[test]
    fn im2col_valid_matches_direct_conv() {
        // One channel, 4x4 input, 3x3 kernel: check im2col rows reproduce
        // the direct sliding-window XNOR popcounts.
        let mut t = BitTensor::zeros(1, 4, 4);
        for (i, (y, x)) in [(0, 1), (1, 2), (2, 0), (3, 3), (2, 2)].iter().enumerate() {
            let _ = i;
            t.set(0, *y, *x, true);
        }
        let kernel =
            BitVec::from_bools(&[true, false, true, false, true, false, true, false, true]);
        let cols = t.im2col(3, 1, 0);
        assert_eq!(cols.rows(), 4); // 2x2 output
        for oy in 0..2 {
            for ox in 0..2 {
                // direct window extraction
                let mut win = BitVec::zeros(9);
                for ky in 0..3 {
                    for kx in 0..3 {
                        if t.get(0, oy + ky, ox + kx) == Some(true) {
                            win.set(ky * 3 + kx, true);
                        }
                    }
                }
                let direct = ops::xnor_popcount(&win, &kernel);
                let via_cols = ops::xnor_popcount(&cols.row(oy * 2 + ox), &kernel);
                assert_eq!(direct, via_cols);
            }
        }
    }

    #[test]
    fn im2col_padding_reads_zero() {
        let mut t = BitTensor::zeros(1, 2, 2);
        t.set(0, 0, 0, true);
        let cols = t.im2col(3, 1, 1);
        assert_eq!(cols.rows(), 4);
        // Window centred at (0,0): the padded positions contribute 0 bits,
        // so the only set bit is the centre.
        let w00 = cols.row(0);
        assert_eq!(w00.popcount(), 1);
        assert_eq!(w00.get(4), Some(true)); // centre of 3x3
    }

    #[test]
    fn max_pool_is_or() {
        let mut t = BitTensor::zeros(1, 4, 4);
        t.set(0, 0, 1, true); // window (0,0)
        t.set(0, 3, 3, true); // window (1,1)
        let p = t.max_pool_2x2();
        assert_eq!(p.height(), 2);
        assert_eq!(p.get(0, 0, 0), Some(true));
        assert_eq!(p.get(0, 0, 1), Some(false));
        assert_eq!(p.get(0, 1, 0), Some(false));
        assert_eq!(p.get(0, 1, 1), Some(true));
    }

    #[test]
    fn density_counts_fraction() {
        let mut t = BitTensor::zeros(1, 2, 2);
        t.set(0, 0, 0, true);
        assert!((t.density() - 0.25).abs() < 1e-12);
    }
}
