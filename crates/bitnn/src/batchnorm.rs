//! Batch normalization and its folding into integer thresholds.
//!
//! In a BNN hidden layer the sequence `binary-dot → batch-norm → sign`
//! collapses into a single integer comparison on the XNOR popcount
//! (the standard "threshold trick"): with pre-activation
//! `p = 2·pop − m` and batch-norm `y = γ·(p − μ)/σ + β`, the output bit
//! `y ≥ 0` is equivalent to `pop ≥ T` (or `pop < T` when `γ < 0`).
//!
//! This is what lets the paper's crossbar read the *final* binary
//! activation with nothing more than an ADC compare after the popcount.

/// Per-neuron batch normalization parameters (inference form).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    /// Scale `γ` per neuron.
    pub gamma: Vec<f32>,
    /// Shift `β` per neuron.
    pub beta: Vec<f32>,
    /// Running mean `μ` per neuron.
    pub mean: Vec<f32>,
    /// Running variance per neuron.
    pub var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNorm {
    /// Identity batch norm (`γ = 1, β = 0, μ = 0, σ² = 1`) over `n` neurons.
    ///
    /// Folding an identity batch norm over fan-in `m` yields the natural
    /// majority threshold `pop ≥ ⌈m/2⌉`.
    pub fn identity(n: usize) -> Self {
        Self {
            gamma: vec![1.0; n],
            beta: vec![0.0; n],
            mean: vec![0.0; n],
            var: vec![1.0; n],
            eps: 1e-5,
        }
    }

    /// Number of neurons covered.
    pub fn len(&self) -> usize {
        self.gamma.len()
    }

    /// Returns `true` when the batch norm covers zero neurons.
    pub fn is_empty(&self) -> bool {
        self.gamma.is_empty()
    }

    /// Normalizes a pre-activation value for neuron `i`.
    pub fn apply(&self, i: usize, x: f32) -> f32 {
        self.gamma[i] * (x - self.mean[i]) / (self.var[i] + self.eps).sqrt() + self.beta[i]
    }

    /// Folds `batch-norm → sign` over bipolar pre-activations of fan-in `m`
    /// into popcount-domain thresholds.
    ///
    /// The returned spec for neuron `i` satisfies: for any popcount `pop`,
    /// `spec.fire(pop) == (self.apply(i, 2·pop − m) ≥ 0)`.
    pub fn fold_popcount(&self, m: usize) -> Vec<ThresholdSpec> {
        (0..self.len())
            .map(|i| {
                let sigma = (self.var[i] + self.eps).sqrt();
                let g = self.gamma[i];
                if g.abs() < 1e-20 {
                    // Degenerate: output is sign(beta) independent of input.
                    return if self.beta[i] >= 0.0 {
                        ThresholdSpec::always_fire()
                    } else {
                        ThresholdSpec::never_fire()
                    };
                }
                // y >= 0  <=>  (p - mu)*sign(g) >= -beta*sigma/|g| * sign(g)... solve directly:
                // y = g*(p-mu)/sigma + beta >= 0
                //   g > 0:  p >= mu - beta*sigma/g      =: tau
                //   g < 0:  p <= mu - beta*sigma/g      =: tau
                let tau = self.mean[i] - self.beta[i] * sigma / g;
                // p = 2*pop - m; p >= tau <=> pop >= (tau + m)/2
                let pop_bound = (tau + m as f32) / 2.0;
                if g > 0.0 {
                    ThresholdSpec::fire_at_or_above(pop_bound.ceil() as i64)
                } else {
                    // p <= tau <=> pop <= (tau+m)/2 <=> pop < floor(..)+1
                    ThresholdSpec::fire_below(pop_bound.floor() as i64 + 1)
                }
            })
            .collect()
    }

    /// Folds `batch-norm → sign` over *raw integer* pre-activations (the
    /// fixed-point first layer) into integer thresholds on the
    /// pre-activation itself.
    ///
    /// `scale` converts the integer accumulator to the real-valued domain
    /// the batch norm was trained in (`real ≈ scale · int`).
    pub fn fold_fixed(&self, scale: f32) -> Vec<ThresholdSpec> {
        (0..self.len())
            .map(|i| {
                let sigma = (self.var[i] + self.eps).sqrt();
                let g = self.gamma[i];
                if g.abs() < 1e-20 {
                    return if self.beta[i] >= 0.0 {
                        ThresholdSpec::always_fire()
                    } else {
                        ThresholdSpec::never_fire()
                    };
                }
                let tau = (self.mean[i] - self.beta[i] * sigma / g) / scale;
                if g > 0.0 {
                    ThresholdSpec::fire_at_or_above(tau.ceil() as i64)
                } else {
                    ThresholdSpec::fire_below(tau.floor() as i64 + 1)
                }
            })
            .collect()
    }
}

/// A folded `batch-norm → sign` decision: fires (outputs bit 1) when the
/// integer statistic is on the configured side of the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThresholdSpec {
    threshold: i64,
    /// `false`: fire when `x ≥ threshold`; `true`: fire when `x < threshold`.
    flipped: bool,
}

impl ThresholdSpec {
    /// Fires when the statistic is `≥ t`.
    pub fn fire_at_or_above(t: i64) -> Self {
        Self {
            threshold: t,
            flipped: false,
        }
    }

    /// Fires when the statistic is `< t` (negative-γ batch norm).
    pub fn fire_below(t: i64) -> Self {
        Self {
            threshold: t,
            flipped: true,
        }
    }

    /// Fires for every input.
    pub fn always_fire() -> Self {
        Self::fire_at_or_above(i64::MIN)
    }

    /// Fires for no input.
    pub fn never_fire() -> Self {
        Self::fire_at_or_above(i64::MAX)
    }

    /// The majority threshold `pop ≥ ⌈m/2⌉` — what identity batch norm
    /// folds to over fan-in `m` (i.e. `sign(2·pop − m)` with ties firing).
    pub fn majority(m: usize) -> Self {
        Self::fire_at_or_above((m as i64).div_euclid(2) + (m as i64 % 2))
    }

    /// Raw threshold value.
    pub fn threshold(&self) -> i64 {
        self.threshold
    }

    /// Whether the comparison is flipped (`x < t` fires).
    pub fn is_flipped(&self) -> bool {
        self.flipped
    }

    /// Evaluates the decision on an integer statistic.
    #[inline]
    pub fn fire(&self, x: i64) -> bool {
        if self.flipped {
            x < self.threshold
        } else {
            x >= self.threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_folds_to_majority() {
        let bn = BatchNorm::identity(3);
        let specs = bn.fold_popcount(10);
        // p = 2*pop - 10 >= 0 <=> pop >= 5
        for s in &specs {
            assert!(!s.fire(4));
            assert!(s.fire(5));
            assert!(s.fire(10));
        }
        assert_eq!(specs[0], ThresholdSpec::majority(10));
    }

    #[test]
    fn majority_odd_fanin() {
        // m = 9: p = 2*pop - 9 >= 0 <=> pop >= 4.5 <=> pop >= 5
        let s = ThresholdSpec::majority(9);
        assert!(!s.fire(4));
        assert!(s.fire(5));
        let bn = BatchNorm::identity(1);
        assert_eq!(bn.fold_popcount(9)[0], s);
    }

    #[test]
    fn fold_matches_float_reference_dense_sweep() {
        // Sweep a grid of BN parameters and all popcounts, check the folded
        // integer decision equals the float sign decision.
        let m = 17usize;
        for &gamma in &[2.0f32, 0.7, -1.3, -0.4] {
            for &beta in &[-1.5f32, 0.0, 2.2] {
                for &mu in &[-3.0f32, 0.0, 4.5] {
                    for &var in &[0.25f32, 1.0, 9.0] {
                        let bn = BatchNorm {
                            gamma: vec![gamma],
                            beta: vec![beta],
                            mean: vec![mu],
                            var: vec![var],
                            eps: 1e-5,
                        };
                        let spec = bn.fold_popcount(m)[0];
                        for pop in 0..=m {
                            let p = 2.0 * pop as f32 - m as f32;
                            let want = bn.apply(0, p) >= 0.0;
                            assert_eq!(
                                spec.fire(pop as i64),
                                want,
                                "gamma={gamma} beta={beta} mu={mu} var={var} pop={pop}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_gamma_fires_on_beta_sign() {
        let bn = BatchNorm {
            gamma: vec![0.0, 0.0],
            beta: vec![1.0, -1.0],
            mean: vec![0.0; 2],
            var: vec![1.0; 2],
            eps: 1e-5,
        };
        let specs = bn.fold_popcount(8);
        assert!(specs[0].fire(0) && specs[0].fire(8));
        assert!(!specs[1].fire(0) && !specs[1].fire(8));
    }

    #[test]
    fn fold_fixed_scales_threshold() {
        let bn = BatchNorm {
            gamma: vec![1.0],
            beta: vec![-2.0],
            mean: vec![4.0],
            var: vec![1.0 - 1e-5],
            eps: 1e-5,
        };
        // tau(real) = mu - beta*sigma/gamma = 4 + 2 = 6; scale 0.5 => int >= 12
        let spec = bn.fold_fixed(0.5)[0];
        assert!(!spec.fire(11));
        assert!(spec.fire(12));
    }

    #[test]
    fn flipped_spec_orders_correctly() {
        let s = ThresholdSpec::fire_below(3);
        assert!(s.fire(2));
        assert!(!s.fire(3));
        assert!(s.is_flipped());
    }
}
