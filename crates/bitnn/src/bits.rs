//! Bit-packed binary vectors.
//!
//! A [`BitVec`] stores a vector over {0, 1} packed 64 bits per word. In the
//! BNN convention used throughout this workspace (and the paper's Eq. 1),
//! bit `1` encodes the bipolar value `+1` and bit `0` encodes `-1`.
//!
//! The type maintains the invariant that all bits beyond `len` in the last
//! word are zero, so [`BitVec::popcount`] and the bitwise operations never
//! need per-call masking of intermediate results.

use std::fmt;

/// Number of bits stored per backing word.
pub const WORD_BITS: usize = 64;

/// Walks the set bits of packed `words` in increasing index order, one
/// `trailing_zeros` per set bit. Shared by [`BitVec::iter_ones`] and the
/// word-level kernels in [`crate::ops`] that walk matrix rows directly.
pub(crate) fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let base = wi * WORD_BITS;
        std::iter::successors((word != 0).then_some(word), |&m| {
            let next = m & (m - 1);
            (next != 0).then_some(next)
        })
        .map(move |m| base + m.trailing_zeros() as usize)
    })
}

/// A bit-packed binary vector over {0, 1}.
///
/// Bit `1` encodes bipolar `+1`, bit `0` encodes bipolar `-1`.
///
/// # Examples
///
/// ```
/// use eb_bitnn::BitVec;
///
/// let v = BitVec::from_bools(&[true, false, true, true]);
/// assert_eq!(v.len(), 4);
/// assert_eq!(v.popcount(), 3);
/// assert_eq!(v.get(1), Some(false));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let v = BitVec::zeros(100);
    /// assert_eq!(v.popcount(), 0);
    /// assert_eq!(v.len(), 100);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-one vector of `len` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let v = BitVec::ones(70);
    /// assert_eq!(v.popcount(), 70);
    /// ```
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a vector from a slice of booleans (`true` ⇒ bit 1 ⇒ bipolar +1).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector from bipolar values; any value > 0 becomes bit 1.
    ///
    /// This is the binarization (`sign`) step of a BNN applied to raw values:
    /// positives map to +1 (bit 1), zero and negatives map to -1 (bit 0).
    pub fn from_bipolar(values: &[i8]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x > 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `len` bits from backing words.
    ///
    /// Bits past `len` in the final word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len.div_ceil(64)` words.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(
            words.len() >= len.div_ceil(WORD_BITS),
            "word slice too short: {} words for {} bits",
            words.len(),
            len
        );
        let mut v = Self { words, len };
        v.words.truncate(len.div_ceil(WORD_BITS));
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing words; bits past `len` are guaranteed zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterator over the indices of set bits, in increasing order.
    ///
    /// Walks the packed words directly (one `trailing_zeros` per set bit),
    /// so sparse vectors iterate in `O(popcount)` word operations — the
    /// primitive behind the word-level fixed-point and batch-VMM kernels.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let v = BitVec::from_bools(&[true, false, false, true]);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    /// ```
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_set_bits(&self.words)
    }

    /// Reads bit `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some((self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1)
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        let w = i / WORD_BITS;
        let b = i % WORD_BITS;
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits (population count).
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Element-wise XNOR: the BNN replacement for multiplication (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let a = BitVec::from_bools(&[true, false, true]);
    /// let b = BitVec::from_bools(&[true, true, false]);
    /// assert_eq!(a.xnor(&b).popcount(), 1); // only position 0 agrees
    /// ```
    pub fn xnor(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "xnor length mismatch");
        let mut out = Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| !(a ^ b))
                .collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Element-wise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "and length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Element-wise OR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "or length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Element-wise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "xor length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise complement (the "barred" vectors of the paper's Fig. 2/3).
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let v = BitVec::from_bools(&[true, false]);
    /// assert_eq!(v.complement().popcount(), 1);
    /// ```
    pub fn complement(&self) -> Self {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Concatenates `self` followed by `other`.
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.len + other.len);
        for i in 0..self.len {
            if self.get(i) == Some(true) {
                out.set(i, true);
            }
        }
        for i in 0..other.len {
            if other.get(i) == Some(true) {
                out.set(self.len + i, true);
            }
        }
        out
    }

    /// The TacitMap input encoding: `[v ; v̄]` (vector followed by its
    /// complement), which is applied to the crossbar rows so that a plain
    /// AND-accumulate column readout equals `popcount(v ⊙ w)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_bitnn::BitVec;
    /// let v = BitVec::from_bools(&[true, false]);
    /// let t = v.with_complement();
    /// assert_eq!(t.len(), 4);
    /// assert_eq!(t.popcount(), 2);
    /// ```
    pub fn with_complement(&self) -> Self {
        self.concat(&self.complement())
    }

    /// Extracts the sub-vector `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = Self::zeros(len);
        for i in 0..len {
            if self.get(start + i) == Some(true) {
                out.set(i, true);
            }
        }
        out
    }

    /// Converts to a vector of booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len)
            .map(|i| self.get(i).unwrap_or(false))
            .collect()
    }

    /// Converts to bipolar values (+1 for bit 1, -1 for bit 0).
    pub fn to_bipolar(&self) -> Vec<i8> {
        (0..self.len)
            .map(|i| if self.get(i) == Some(true) { 1 } else { -1 })
            .collect()
    }

    /// Iterator over bits as booleans.
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, idx: 0 }
    }

    /// Hamming distance to `other` (number of disagreeing positions).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Self) -> u32 {
        self.xor(other).popcount()
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i) == Some(true)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i) == Some(true)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bits)
    }
}

/// Iterator over the bits of a [`BitVec`], produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.vec.get(self.idx)?;
        self.idx += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len.saturating_sub(self.idx);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_popcounts() {
        assert_eq!(BitVec::zeros(130).popcount(), 0);
        assert_eq!(BitVec::ones(130).popcount(), 130);
        assert_eq!(BitVec::ones(64).popcount(), 64);
        assert_eq!(BitVec::ones(0).popcount(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.get(0), Some(true));
        assert_eq!(v.get(1), Some(false));
        assert_eq!(v.get(63), Some(true));
        assert_eq!(v.get(64), Some(true));
        assert_eq!(v.get(99), Some(true));
        assert_eq!(v.get(100), None);
        assert_eq!(v.popcount(), 4);
        v.set(63, false);
        assert_eq!(v.popcount(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = BitVec::zeros(10);
        v.set(10, true);
    }

    #[test]
    fn xnor_matches_scalar_definition() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        let x = a.xnor(&b);
        assert_eq!(x.to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn xnor_tail_bits_stay_clear() {
        // XNOR of two all-zero vectors is all ones *within len*; beyond len
        // the invariant requires zeros so popcount stays correct.
        let a = BitVec::zeros(70);
        let b = BitVec::zeros(70);
        assert_eq!(a.xnor(&b).popcount(), 70);
    }

    #[test]
    fn complement_inverts_and_masks() {
        let v = BitVec::from_bools(&[true, false, true]);
        let c = v.complement();
        assert_eq!(c.to_bools(), vec![false, true, false]);
        assert_eq!(v.popcount() + c.popcount(), 3);
        let long = BitVec::zeros(100);
        assert_eq!(long.complement().popcount(), 100);
    }

    #[test]
    fn with_complement_always_half_set() {
        for len in [1usize, 7, 64, 65, 200] {
            let mut v = BitVec::zeros(len);
            for i in (0..len).step_by(3) {
                v.set(i, true);
            }
            let t = v.with_complement();
            assert_eq!(t.len(), 2 * len);
            assert_eq!(t.popcount() as usize, len);
        }
    }

    #[test]
    fn concat_preserves_order() {
        let a = BitVec::from_bools(&[true, false]);
        let b = BitVec::from_bools(&[false, true, true]);
        let c = a.concat(&b);
        assert_eq!(c.to_bools(), vec![true, false, false, true, true]);
    }

    #[test]
    fn slice_extracts_window() {
        let v = BitVec::from_bools(&[true, false, true, true, false, true]);
        let s = v.slice(2, 3);
        assert_eq!(s.to_bools(), vec![true, true, false]);
    }

    #[test]
    fn bipolar_roundtrip() {
        let vals: Vec<i8> = vec![1, -1, -1, 1, 1];
        let v = BitVec::from_bipolar(&vals);
        assert_eq!(v.to_bipolar(), vals);
    }

    #[test]
    fn from_words_masks_excess_bits() {
        let v = BitVec::from_words(vec![u64::MAX], 5);
        assert_eq!(v.popcount(), 5);
    }

    #[test]
    fn hamming_distance() {
        let a = BitVec::from_bools(&[true, true, false]);
        let b = BitVec::from_bools(&[false, true, true]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn iterator_yields_all_bits() {
        let v = BitVec::from_bools(&[true, false, true]);
        let collected: Vec<bool> = v.iter().collect();
        assert_eq!(collected, vec![true, false, true]);
        let back: BitVec = collected.into_iter().collect();
        assert_eq!(back, v);
    }

    #[test]
    fn display_formats_bits() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn iter_ones_matches_scalar_scan() {
        for len in [0usize, 1, 63, 64, 65, 130, 200] {
            let mut v = BitVec::zeros(len);
            for i in (0..len).step_by(7) {
                v.set(i, true);
            }
            let expect: Vec<usize> = (0..len).filter(|&i| v.get(i) == Some(true)).collect();
            assert_eq!(v.iter_ones().collect::<Vec<_>>(), expect, "len {len}");
        }
        assert_eq!(BitVec::ones(70).iter_ones().count(), 70);
        assert_eq!(BitVec::zeros(70).iter_ones().count(), 0);
    }
}
