//! Dense `f32` matrices and the cache-aware GEMM kernels behind the
//! mini-batch trainer.
//!
//! The trainer's hot loops are all row-major matrix products against a
//! weight matrix stored one weight vector per row, so every kernel here is
//! the `A · Bᵀ` ("NT") shape: each output element is a dot product of two
//! contiguous rows. Two dot kernels are provided:
//!
//! * a **strict** sequential kernel whose float summation order is exactly
//!   the seed trainer's scalar loop — the batch-size-1 path uses it so the
//!   mini-batch engine reproduces the per-sample SGD trajectory
//!   bit-for-bit;
//! * an **8-lane** kernel that keeps eight independent partial sums so the
//!   reduction is no longer one serial dependency chain — LLVM turns it
//!   into SIMD multiply-adds. Mini-batches (`B ≥ 2`) use it; they define a
//!   different optimizer anyway, so the reassociation is free speed.
//!
//! [`matmul_nt`] splits its output rows into one contiguous block per
//! rayon worker; each dot product stays sequential in `k`, so the result
//! is identical no matter how many threads run.

use crate::matrix::BitMatrix;
use rand::Rng;
use rayon::prelude::*;

/// Dense real-valued row-major matrix used by the trainer.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct DenseMat {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    data: Vec<f32>,
}

impl DenseMat {
    /// He-style uniform init, identical to the seed trainer's.
    pub(crate) fn random(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let scale = (2.0 / cols as f32).sqrt();
        Self {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect(),
        }
    }

    /// Re-shapes in place to `rows × cols`, zero-filled. Keeps the backing
    /// allocation when capacity suffices — the scratch-reuse primitive.
    pub(crate) fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub(crate) fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrowed row `r`.
    #[inline]
    pub(crate) fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub(crate) fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat immutable view.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Overwrites `self` with the element-wise signs (`±1.0`) of `src`
    /// (`+1.0 ⇔ value ≥ 0`), resizing as needed. This is the
    /// binarize-once-per-step operation: one linear pass instead of the
    /// seed's per-sample branch on every weight read.
    pub(crate) fn fill_signs_of(&mut self, src: &DenseMat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend(
            src.data
                .iter()
                .map(|&w| if w >= 0.0 { 1.0f32 } else { -1.0 }),
        );
    }

    /// Binarized (sign) view as a `BitMatrix` (bit 1 ⇔ value ≥ 0), built
    /// word-level via [`BitMatrix::from_sign_slice`].
    pub(crate) fn binarize(&self) -> BitMatrix {
        BitMatrix::from_sign_slice(self.rows, self.cols, &self.data)
    }
}

/// Strict sequential dot product starting from `init`: one accumulator,
/// ascending index — the exact float summation order of the seed
/// trainer's scalar loops.
#[inline]
pub(crate) fn dot_strict(init: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = init;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Number of independent partial sums in the fast dot kernel.
const LANES: usize = 8;

/// Fast dot product: eight independent accumulators hide the floating-add
/// latency chain and vectorize. Reassociates the sum, so it is *not*
/// bit-identical to [`dot_strict`].
#[inline]
pub(crate) fn dot_lanes(init: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut sum = init;
    for &v in &acc {
        sum += v;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

/// `out = a · bᵀ (+ bias)`: `out[i][j] = bias[j] + Σ_k a[i][k]·b[j][k]`.
///
/// `a` is `m × k` (one input vector per row), `b` is `n × k` (one weight
/// vector per row — the layout every layer in this crate stores), `out`
/// is resized to `m × n`. With `exact` set the strict sequential kernel
/// is used (bias seeds the accumulator, then products are added in
/// ascending `k`), reproducing the seed trainer's summation order;
/// otherwise the 8-lane kernel runs.
///
/// Output rows are distributed over rayon workers in contiguous blocks;
/// every dot product is sequential in `k`, so the result is independent
/// of the thread count.
///
/// # Panics
///
/// Panics if the inner dimensions or the bias length disagree.
pub(crate) fn matmul_nt(
    out: &mut DenseMat,
    a: &DenseMat,
    b: &DenseMat,
    bias: Option<&[f32]>,
    exact: bool,
) {
    assert_eq!(a.cols, b.cols, "inner dimension mismatch");
    if let Some(bs) = bias {
        assert_eq!(bs.len(), b.rows, "bias length mismatch");
    }
    let (m, n) = (a.rows, b.rows);
    out.reset(m, n);
    if m == 0 || n == 0 {
        return;
    }
    let block = m.div_ceil(rayon::current_num_threads().max(1)).max(1);
    out.as_mut_slice()
        .par_chunks_mut(block * n)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let row0 = ci * block;
            for (ri, orow) in chunk.chunks_mut(n).enumerate() {
                let arow = a.row(row0 + ri);
                for (j, o) in orow.iter_mut().enumerate() {
                    let init = bias.map_or(0.0, |bs| bs[j]);
                    *o = if exact {
                        dot_strict(init, arow, b.row(j))
                    } else {
                        dot_lanes(init, arow, b.row(j))
                    };
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mat_from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> DenseMat {
        let mut m = DenseMat::default();
        m.reset(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                *m.at_mut(r, c) = f(r, c);
            }
        }
        m
    }

    #[test]
    fn strict_and_lane_dots_agree_closely() {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let a: Vec<f32> = (0..len).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
            let b: Vec<f32> = (0..len)
                .map(|i| ((i * 5) % 11) as f32 * 0.25 - 1.0)
                .collect();
            let s = dot_strict(0.5, &a, &b);
            let l = dot_lanes(0.5, &a, &b);
            assert!((s - l).abs() < 1e-3, "len {len}: {s} vs {l}");
        }
    }

    #[test]
    fn strict_dot_matches_scalar_loop_bitwise() {
        let a: Vec<f32> = (0..77).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..77).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut acc = 0.25f32;
        for i in 0..77 {
            acc += a[i] * b[i];
        }
        assert_eq!(dot_strict(0.25, &a, &b).to_bits(), acc.to_bits());
    }

    #[test]
    fn matmul_nt_matches_naive_reference() {
        let a = mat_from_fn(5, 33, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.5 - 3.0);
        let b = mat_from_fn(4, 33, |r, c| ((r * 17 + c * 3) % 9) as f32 * 0.25 - 1.0);
        let bias = [0.1f32, -0.2, 0.3, -0.4];
        for exact in [true, false] {
            let mut out = DenseMat::default();
            matmul_nt(&mut out, &a, &b, Some(&bias), exact);
            assert_eq!((out.rows, out.cols), (5, 4));
            for i in 0..5 {
                for j in 0..4 {
                    let mut want = bias[j];
                    for k in 0..33 {
                        want += a.at(i, k) * b.at(j, k);
                    }
                    let got = out.at(i, j);
                    assert!((got - want).abs() < 1e-3, "({i},{j}): {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn exact_matmul_is_bitwise_seed_order() {
        let a = mat_from_fn(3, 50, |r, c| ((r + c * 3) as f32 * 0.21).sin());
        let b = mat_from_fn(6, 50, |r, c| ((r * 5 + c) as f32 * 0.13).cos());
        let mut out = DenseMat::default();
        matmul_nt(&mut out, &a, &b, None, true);
        for i in 0..3 {
            for j in 0..6 {
                let mut acc = 0.0f32;
                for k in 0..50 {
                    acc += a.at(i, k) * b.at(j, k);
                }
                assert_eq!(out.at(i, j).to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut m = DenseMat::default();
        m.reset(8, 8);
        let cap = m.data.capacity();
        *m.at_mut(3, 3) = 7.0;
        m.reset(4, 4);
        assert_eq!(
            m.data.capacity(),
            cap,
            "reset must not reallocate when shrinking"
        );
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!((m.rows, m.cols), (4, 4));
    }

    #[test]
    fn fill_signs_and_binarize_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = DenseMat::random(5, 70, &mut rng);
        let mut s = DenseMat::default();
        s.fill_signs_of(&w);
        let bits = w.binarize();
        for r in 0..5 {
            for c in 0..70 {
                assert_eq!(s.at(r, c) >= 0.0, bits.get(r, c) == Some(true));
                assert_eq!(s.at(r, c).abs(), 1.0);
            }
        }
    }
}
