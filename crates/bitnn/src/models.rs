//! The six MlBench/PRIME-style benchmark BNNs evaluated in the paper.
//!
//! The paper (Section V-C) evaluates three multilayer perceptrons and
//! three convolutional networks "with various sizes from MlBench", on
//! MNIST and CIFAR-10. The exact layer tables are not reproduced in the
//! paper, so we use the canonical MlBench/PRIME topologies: MLP-S/M/L on
//! MNIST-shaped inputs and LeNet/VGG-style CNNs (CNN-S on MNIST,
//! CNN-M/CNN-L on CIFAR-10). Latency and energy depend only on these
//! dimensions, not on the trained weight values.

use crate::error::BitnnError;
use crate::layers::{
    BinConv, BinLinear, FixedConv, FixedLinear, Layer, LayerDims, LayerKind, OutputLinear, Shape,
};
use crate::network::Bnn;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dataset a benchmark network runs on (controls the input shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 1×28×28 grayscale digits.
    Mnist,
    /// 3×32×32 color images.
    Cifar10,
}

impl DatasetKind {
    /// Input shape of one sample.
    pub fn input_shape(&self) -> Shape {
        match self {
            Self::Mnist => Shape::Img(1, 28, 28),
            Self::Cifar10 => Shape::Img(3, 32, 32),
        }
    }
}

/// One of the six benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchModel {
    /// MLP 784-500-250-10 (MNIST).
    MlpS,
    /// MLP 784-1500-1000-500-10 (MNIST).
    MlpM,
    /// MLP 784-2000-1500-1000-500-10 (MNIST).
    MlpL,
    /// LeNet-style CNN (MNIST).
    CnnS,
    /// VGG-style CNN, 64–256 channels (CIFAR-10).
    CnnM,
    /// VGG-style CNN, 128–512 channels (CIFAR-10).
    CnnL,
}

impl BenchModel {
    /// All six models in the order used by the paper's figures
    /// (CNNs first, then MLPs).
    pub fn all() -> [Self; 6] {
        [
            Self::CnnS,
            Self::CnnM,
            Self::CnnL,
            Self::MlpS,
            Self::MlpM,
            Self::MlpL,
        ]
    }

    /// Short display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::MlpS => "MLP-S",
            Self::MlpM => "MLP-M",
            Self::MlpL => "MLP-L",
            Self::CnnS => "CNN-S",
            Self::CnnM => "CNN-M",
            Self::CnnL => "CNN-L",
        }
    }

    /// Dataset the model runs on.
    pub fn dataset(&self) -> DatasetKind {
        match self {
            Self::MlpS | Self::MlpM | Self::MlpL | Self::CnnS => DatasetKind::Mnist,
            Self::CnnM | Self::CnnL => DatasetKind::Cifar10,
        }
    }

    /// Whether the model is an MLP (flattened input).
    pub fn is_mlp(&self) -> bool {
        matches!(self, Self::MlpS | Self::MlpM | Self::MlpL)
    }

    /// Input shape fed to the network (MLPs consume the flattened image).
    pub fn input_shape(&self) -> Shape {
        if self.is_mlp() {
            Shape::Flat(self.dataset().input_shape().len())
        } else {
            self.dataset().input_shape()
        }
    }

    /// Builds the network with seeded pseudo-random weights.
    ///
    /// Weight values do not affect latency/energy (only dimensions do);
    /// seeded weights make every functional test reproducible.
    ///
    /// # Errors
    ///
    /// Propagates network construction errors (none expected for the
    /// built-in topologies).
    pub fn build(&self, seed: u64) -> Result<Bnn, BitnnError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = &mut rng;
        let layers: Vec<Layer> = match self {
            Self::MlpS => mlp_layers(&[784, 500, 250, 10], r),
            Self::MlpM => mlp_layers(&[784, 1500, 1000, 500, 10], r),
            Self::MlpL => mlp_layers(&[784, 2000, 1500, 1000, 500, 10], r),
            Self::CnnS => vec![
                Layer::FixedConv(FixedConv::random("conv1", 1, 6, 5, 1, 0, r)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("conv2", 6, 16, 5, 1, 0, r)),
                Layer::MaxPool2,
                Layer::Flatten,
                Layer::BinLinear(BinLinear::random("fc1", 16 * 4 * 4, 120, r)),
                Layer::BinLinear(BinLinear::random("fc2", 120, 84, r)),
                Layer::Output(OutputLinear::random("out", 84, 10, r)),
            ],
            Self::CnnM => vec![
                Layer::FixedConv(FixedConv::random("conv1", 3, 64, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv2", 64, 64, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("conv3", 64, 128, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv4", 128, 128, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("conv5", 128, 256, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv6", 256, 256, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::Flatten,
                Layer::BinLinear(BinLinear::random("fc1", 256 * 4 * 4, 1024, r)),
                Layer::Output(OutputLinear::random("out", 1024, 10, r)),
            ],
            Self::CnnL => vec![
                Layer::FixedConv(FixedConv::random("conv1", 3, 128, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv2", 128, 128, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("conv3", 128, 256, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv4", 256, 256, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("conv5", 256, 512, 3, 1, 1, r)),
                Layer::BinConv(BinConv::random("conv6", 512, 512, 3, 1, 1, r)),
                Layer::MaxPool2,
                Layer::Flatten,
                Layer::BinLinear(BinLinear::random("fc1", 512 * 4 * 4, 1024, r)),
                Layer::BinLinear(BinLinear::random("fc2", 1024, 1024, r)),
                Layer::Output(OutputLinear::random("out", 1024, 10, r)),
            ],
        };
        Bnn::new(self.name(), self.input_shape(), layers)
    }

    /// Crossbar workload dimensions without building weights.
    ///
    /// Equal to `self.build(seed)?.layer_dims()` (checked by a test), but
    /// computed from the topology tables alone — the performance models in
    /// `eb-core` call this in hot loops.
    pub fn dims(&self) -> Vec<LayerDims> {
        match self {
            Self::MlpS => mlp_dims(&[784, 500, 250, 10]),
            Self::MlpM => mlp_dims(&[784, 1500, 1000, 500, 10]),
            Self::MlpL => mlp_dims(&[784, 2000, 1500, 1000, 500, 10]),
            Self::CnnS => {
                let mut d = vec![
                    conv_dims("conv1", LayerKind::FirstFixed, 1, 6, 5, 24, 24),
                    conv_dims("conv2", LayerKind::HiddenBinary, 6, 16, 5, 8, 8),
                ];
                d.push(linear_dims("fc1", LayerKind::HiddenBinary, 256, 120));
                d.push(linear_dims("fc2", LayerKind::HiddenBinary, 120, 84));
                d.push(linear_dims("out", LayerKind::OutputFixed, 84, 10));
                d
            }
            Self::CnnM => vec![
                conv_dims("conv1", LayerKind::FirstFixed, 3, 64, 3, 32, 32),
                conv_dims("conv2", LayerKind::HiddenBinary, 64, 64, 3, 32, 32),
                conv_dims("conv3", LayerKind::HiddenBinary, 64, 128, 3, 16, 16),
                conv_dims("conv4", LayerKind::HiddenBinary, 128, 128, 3, 16, 16),
                conv_dims("conv5", LayerKind::HiddenBinary, 128, 256, 3, 8, 8),
                conv_dims("conv6", LayerKind::HiddenBinary, 256, 256, 3, 8, 8),
                linear_dims("fc1", LayerKind::HiddenBinary, 4096, 1024),
                linear_dims("out", LayerKind::OutputFixed, 1024, 10),
            ],
            Self::CnnL => vec![
                conv_dims("conv1", LayerKind::FirstFixed, 3, 128, 3, 32, 32),
                conv_dims("conv2", LayerKind::HiddenBinary, 128, 128, 3, 32, 32),
                conv_dims("conv3", LayerKind::HiddenBinary, 128, 256, 3, 16, 16),
                conv_dims("conv4", LayerKind::HiddenBinary, 256, 256, 3, 16, 16),
                conv_dims("conv5", LayerKind::HiddenBinary, 256, 512, 3, 8, 8),
                conv_dims("conv6", LayerKind::HiddenBinary, 512, 512, 3, 8, 8),
                linear_dims("fc1", LayerKind::HiddenBinary, 8192, 1024),
                linear_dims("fc2", LayerKind::HiddenBinary, 1024, 1024),
                linear_dims("out", LayerKind::OutputFixed, 1024, 10),
            ],
        }
    }
}

impl std::fmt::Display for BenchModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn linear_dims(name: &str, kind: LayerKind, fan_in: usize, out: usize) -> LayerDims {
    LayerDims {
        name: name.to_string(),
        kind,
        fan_in,
        out_vectors: out,
        input_vectors: 1,
        input_bits: if kind == LayerKind::FirstFixed { 8 } else { 1 },
        weight_bits: if kind == LayerKind::OutputFixed { 8 } else { 1 },
    }
}

fn conv_dims(
    name: &str,
    kind: LayerKind,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    oh: usize,
    ow: usize,
) -> LayerDims {
    LayerDims {
        name: name.to_string(),
        kind,
        fan_in: in_ch * k * k,
        out_vectors: out_ch,
        input_vectors: oh * ow,
        input_bits: if kind == LayerKind::FirstFixed { 8 } else { 1 },
        weight_bits: 1,
    }
}

fn mlp_dims(widths: &[usize]) -> Vec<LayerDims> {
    let n = widths.len();
    (0..n - 1)
        .map(|i| {
            let kind = if i == 0 {
                LayerKind::FirstFixed
            } else if i == n - 2 {
                LayerKind::OutputFixed
            } else {
                LayerKind::HiddenBinary
            };
            let name = if i == n - 2 {
                "out".to_string()
            } else {
                format!("fc{}", i + 1)
            };
            LayerDims {
                name,
                kind,
                fan_in: widths[i],
                out_vectors: widths[i + 1],
                input_vectors: 1,
                input_bits: if i == 0 { 8 } else { 1 },
                weight_bits: if i == n - 2 { 8 } else { 1 },
            }
        })
        .collect()
}

fn mlp_layers(dims: &[usize], rng: &mut StdRng) -> Vec<Layer> {
    let mut layers = Vec::new();
    let n = dims.len();
    for i in 0..n - 1 {
        let (fan_in, fan_out) = (dims[i], dims[i + 1]);
        if i == 0 {
            layers.push(Layer::FixedLinear(FixedLinear::random(
                format!("fc{}", i + 1),
                fan_in,
                fan_out,
                rng,
            )));
        } else if i == n - 2 {
            layers.push(Layer::Output(OutputLinear::random(
                "out", fan_in, fan_out, rng,
            )));
        } else {
            layers.push(Layer::BinLinear(BinLinear::random(
                format!("fc{}", i + 1),
                fan_in,
                fan_out,
                rng,
            )));
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerKind;

    #[test]
    fn all_six_models_build_and_validate() {
        for model in BenchModel::all() {
            let net = model.build(3).unwrap();
            assert_eq!(net.output_shape(), Shape::Flat(10), "{model}");
            let dims = net.layer_dims();
            assert!(!dims.is_empty(), "{model}");
            assert_eq!(dims[0].kind, LayerKind::FirstFixed, "{model}");
            assert_eq!(dims.last().unwrap().kind, LayerKind::OutputFixed, "{model}");
        }
    }

    #[test]
    fn table_dims_match_built_networks() {
        // The fast topology tables must agree with the dimensions derived
        // from actually-built networks.
        for model in BenchModel::all() {
            let fast = model.dims();
            let built = model.build(1).unwrap().layer_dims();
            assert_eq!(fast, built, "{model}");
        }
    }

    #[test]
    fn mlp_s_dims_match_topology() {
        let dims = BenchModel::MlpS.dims();
        assert_eq!(dims.len(), 3);
        assert_eq!((dims[0].fan_in, dims[0].out_vectors), (784, 500));
        assert_eq!((dims[1].fan_in, dims[1].out_vectors), (500, 250));
        assert_eq!((dims[2].fan_in, dims[2].out_vectors), (250, 10));
        assert!(dims.iter().all(|d| d.input_vectors == 1));
    }

    #[test]
    fn cnn_s_window_counts() {
        let dims = BenchModel::CnnS.dims();
        // conv1: 24x24 windows; conv2: 8x8 windows
        assert_eq!(dims[0].input_vectors, 24 * 24);
        assert_eq!(dims[1].input_vectors, 8 * 8);
        assert_eq!(dims[1].fan_in, 6 * 25);
    }

    #[test]
    fn models_ordered_by_size_within_family() {
        let macs = |m: BenchModel| m.dims().iter().map(|d| d.macs()).sum::<u64>();
        assert!(macs(BenchModel::MlpS) < macs(BenchModel::MlpM));
        assert!(macs(BenchModel::MlpM) < macs(BenchModel::MlpL));
        assert!(macs(BenchModel::CnnS) < macs(BenchModel::CnnM));
        assert!(macs(BenchModel::CnnM) < macs(BenchModel::CnnL));
    }

    #[test]
    fn cnn_s_runs_forward() {
        let net = BenchModel::CnnS.build(1).unwrap();
        let x = crate::tensor::Tensor::from_fn(&[1, 28, 28], |i| ((i % 7) as f32 - 3.0) / 3.0);
        let logits = net.forward(&x).unwrap();
        assert_eq!(logits.len(), 10);
    }

    #[test]
    fn same_seed_same_network() {
        let a = BenchModel::MlpS.build(9).unwrap();
        let b = BenchModel::MlpS.build(9).unwrap();
        let x = crate::tensor::Tensor::from_fn(&[784], |i| (i as f32).sin());
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }
}
