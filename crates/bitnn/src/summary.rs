//! Network summary tables (the "model card" printer used by examples and
//! the harness).

use crate::layers::LayerKind;
use crate::network::Bnn;

/// Renders a per-layer summary table of a network: kind, dimensions,
/// window counts, MACs, and binary weight storage.
///
/// # Examples
///
/// ```
/// use eb_bitnn::{summary, BenchModel};
/// let net = BenchModel::MlpS.build(0)?;
/// let table = summary::network_table(&net);
/// assert!(table.contains("MLP-S"));
/// assert!(table.contains("fc1"));
/// # Ok::<(), eb_bitnn::BitnnError>(())
/// ```
pub fn network_table(net: &Bnn) -> String {
    let dims = net.layer_dims();
    let mut s = format!(
        "{} — input {}, {} matrix layers, {:.2} M binary-equivalent MACs/sample\n",
        net.name(),
        net.input_shape(),
        dims.len(),
        net.total_macs() as f64 / 1e6
    );
    s.push_str(&format!(
        "{:<10} {:<8} {:>8} {:>8} {:>9} {:>12} {:>12}\n",
        "layer", "kind", "fan-in", "outputs", "windows", "MACs/sample", "weights(KiB)"
    ));
    for d in &dims {
        let kind = match d.kind {
            LayerKind::FirstFixed => "first8b",
            LayerKind::HiddenBinary => "binary",
            LayerKind::OutputFixed => "out8b",
            LayerKind::Pool => "pool",
        };
        let weight_bits = d.fan_in as u64 * d.out_vectors as u64 * u64::from(d.weight_bits);
        s.push_str(&format!(
            "{:<10} {:<8} {:>8} {:>8} {:>9} {:>12} {:>12.1}\n",
            d.name,
            kind,
            d.fan_in,
            d.out_vectors,
            d.input_vectors,
            d.macs(),
            weight_bits as f64 / 8.0 / 1024.0
        ));
    }
    s
}

/// One-line summary: `name: L layers, X MMACs, Y KiB binary weights`.
pub fn network_line(net: &Bnn) -> String {
    let weights_bits: u64 = net
        .layer_dims()
        .iter()
        .map(|d| d.fan_in as u64 * d.out_vectors as u64 * u64::from(d.weight_bits))
        .sum();
    format!(
        "{}: {} matrix layers, {:.2} MMACs/sample, {:.1} KiB weights",
        net.name(),
        net.layer_dims().len(),
        net.total_macs() as f64 / 1e6,
        weights_bits as f64 / 8.0 / 1024.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::BenchModel;

    #[test]
    fn table_lists_every_matrix_layer() {
        let net = BenchModel::CnnS.build(0).unwrap();
        let t = network_table(&net);
        for name in ["conv1", "conv2", "fc1", "fc2", "out"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("first8b"));
        assert!(t.contains("binary"));
        assert!(t.contains("out8b"));
    }

    #[test]
    fn line_reports_macs() {
        let net = BenchModel::MlpS.build(0).unwrap();
        let line = network_line(&net);
        assert!(line.contains("MLP-S"));
        assert!(line.contains("3 matrix layers"));
    }
}
