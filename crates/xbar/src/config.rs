//! Crossbar configuration bundles.

use crate::array::CellKind;
use crate::cost::{XbarEnergies, XbarTimings};
use crate::device::DeviceParams;
use crate::fault::FaultConfig;

/// Full configuration of one electronic crossbar instance.
///
/// Built with a builder-style API:
///
/// ```
/// use eb_xbar::{CellKind, XbarConfig};
///
/// let cfg = XbarConfig::new(128, 128)
///     .with_cell(CellKind::TwoT2R)
///     .with_adcs(8);
/// assert_eq!(cfg.rows, 128);
/// assert_eq!(cfg.cell, CellKind::TwoT2R);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct XbarConfig {
    /// Word lines.
    pub rows: usize,
    /// Bit lines.
    pub cols: usize,
    /// Cell structure.
    pub cell: CellKind,
    /// Read voltage (volts).
    pub v_read: f64,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// Number of column ADCs per crossbar (shared across columns).
    pub n_adcs: usize,
    /// Device model.
    pub device: DeviceParams,
    /// Cell-fault profile applied to every array built from this config
    /// (`None` = immortal devices). Consumers derive a distinct fault-map
    /// seed per physical array from [`FaultConfig::seed`].
    pub fault: Option<FaultConfig>,
    /// Latency constants.
    pub timings: XbarTimings,
    /// Energy constants.
    pub energies: XbarEnergies,
}

impl XbarConfig {
    /// A `rows × cols` 1T1R crossbar with default periphery: 0.2 V reads,
    /// 9-bit ADCs, 16 ADCs per crossbar, ideal devices.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cell: CellKind::OneT1R,
            v_read: 0.2,
            adc_bits: 9,
            n_adcs: 16,
            device: DeviceParams::ideal(),
            fault: None,
            timings: XbarTimings::default(),
            energies: XbarEnergies::default(),
        }
    }

    /// Sets the cell structure.
    pub fn with_cell(mut self, cell: CellKind) -> Self {
        self.cell = cell;
        self
    }

    /// Sets the ADC count.
    pub fn with_adcs(mut self, n: usize) -> Self {
        self.n_adcs = n;
        self
    }

    /// Sets the device model.
    pub fn with_device(mut self, device: DeviceParams) -> Self {
        self.device = device;
        self
    }

    /// Sets the cell-fault profile.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Usable weight bits per column under 1T1R TacitMap layout (half the
    /// rows, since each weight vector is stored with its complement).
    pub fn tacitmap_chunk_rows(&self) -> usize {
        self.rows / 2
    }

    /// Usable weight bits per row under 2T2R CustBinaryMap layout (half the
    /// columns, since each bit occupies a complementary device pair).
    pub fn custbinary_chunk_cols(&self) -> usize {
        self.cols / 2
    }

    /// Total devices in the array (independent of cell kind; a 2T2R array
    /// of the same physical device count has half the logical cells).
    pub fn device_count(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for XbarConfig {
    fn default() -> Self {
        Self::new(256, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_256x256_1t1r() {
        let c = XbarConfig::default();
        assert_eq!((c.rows, c.cols), (256, 256));
        assert_eq!(c.cell, CellKind::OneT1R);
        assert_eq!(c.tacitmap_chunk_rows(), 128);
        assert_eq!(c.custbinary_chunk_cols(), 128);
        assert_eq!(c.device_count(), 65536);
    }

    #[test]
    fn builder_chain() {
        let c = XbarConfig::new(64, 32)
            .with_cell(CellKind::TwoT2R)
            .with_adcs(4)
            .with_device(DeviceParams::noisy());
        assert_eq!(c.n_adcs, 4);
        assert_eq!(c.cell, CellKind::TwoT2R);
        assert!(c.device.read_sigma > 0.0);
    }
}
