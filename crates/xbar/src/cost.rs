//! Latency and energy constants for electronic crossbar operations.
//!
//! These are the parameters the paper sources from the MNEMOSENE ePCM
//! characterisation, PUMA configuration tables and Synopsys synthesis of
//! the extra CMOS (Section V-A). Absolute values are representative of a
//! 32 nm-class node; the evaluation reports *normalized* results, which
//! depend on the ratios (documented per field).

/// Latency constants in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct XbarTimings {
    /// Word-line activation + analog settle of an electronic crossbar VMM.
    pub t_settle_ns: f64,
    /// One ADC conversion (per column sample).
    pub t_adc_ns: f64,
    /// DAC setup (overlapped with settle in the step model).
    pub t_dac_ns: f64,
    /// One full PCSA row read cycle (precharge + sense + reset) — the
    /// per-weight-vector step of CustBinaryMap.
    pub t_pcsa_cycle_ns: f64,
    /// One stage of the digital popcount adder tree.
    pub t_popcount_stage_ns: f64,
    /// One device program pulse.
    pub t_write_ns: f64,
}

impl Default for XbarTimings {
    fn default() -> Self {
        Self {
            t_settle_ns: 10.0,
            t_adc_ns: 1.0,
            t_dac_ns: 1.0,
            t_pcsa_cycle_ns: 10.0,
            t_popcount_stage_ns: 0.5,
            t_write_ns: 100.0,
        }
    }
}

/// Energy constants. Units are chosen per field to keep numbers readable;
/// the [`XbarEnergies::vmm_step_joules`]-family helpers normalize to
/// joules.
#[derive(Debug, Clone, PartialEq)]
pub struct XbarEnergies {
    /// One ADC conversion (pJ) — the power-hungry readout TacitMap pays
    /// for (paper Fig. 8 observation 1).
    pub e_adc_pj: f64,
    /// One binary DAC row drive per step (pJ).
    pub e_dac_pj: f64,
    /// One active cell read: `V²·G·t` class (fJ).
    pub e_cell_read_fj: f64,
    /// One PCSA differential sense (fJ) — far cheaper than an ADC
    /// conversion, which is why Baseline-ePCM wins energy.
    pub e_pcsa_fj: f64,
    /// One popcount-tree bit reduction (fJ).
    pub e_popcount_bit_fj: f64,
    /// One device program pulse (pJ).
    pub e_write_pj: f64,
    /// Row decoder + wordline driver energy per activated row (fJ).
    pub e_row_drive_fj: f64,
}

impl Default for XbarEnergies {
    fn default() -> Self {
        Self {
            e_adc_pj: 2.0,
            e_dac_pj: 0.1,
            e_cell_read_fj: 40.0,
            e_pcsa_fj: 15.0,
            e_popcount_bit_fj: 10.0,
            e_write_pj: 10.0,
            e_row_drive_fj: 20.0,
        }
    }
}

impl XbarEnergies {
    /// Energy of one TacitMap-style VMM step in joules: `rows` driven rows,
    /// `active_cells` conducting cells and `conversions` ADC samples.
    pub fn vmm_step_joules(&self, rows: usize, active_cells: usize, conversions: usize) -> f64 {
        rows as f64 * (self.e_dac_pj * 1e-12 + self.e_row_drive_fj * 1e-15)
            + active_cells as f64 * self.e_cell_read_fj * 1e-15
            + conversions as f64 * self.e_adc_pj * 1e-12
    }

    /// Energy of one CustBinaryMap row-read step in joules: one activated
    /// row, `columns` PCSA senses and `columns` popcount-bit reductions.
    pub fn pcsa_step_joules(&self, columns: usize) -> f64 {
        self.e_row_drive_fj * 1e-15
            + columns as f64 * (self.e_pcsa_fj + self.e_popcount_bit_fj) * 1e-15
    }

    /// Energy to program `cells` devices, in joules.
    pub fn program_joules(&self, cells: usize) -> f64 {
        cells as f64 * self.e_write_pj * 1e-12
    }
}

impl XbarTimings {
    /// Latency of one TacitMap-style VMM step in nanoseconds: settle plus
    /// `conversions` serialized ADC samples across `n_adcs` converters.
    ///
    /// # Panics
    ///
    /// Panics if `n_adcs == 0`.
    pub fn vmm_step_ns(&self, conversions: usize, n_adcs: usize) -> f64 {
        assert!(n_adcs > 0, "need at least one ADC");
        self.t_settle_ns + conversions.div_ceil(n_adcs) as f64 * self.t_adc_ns
    }

    /// Latency of one CustBinaryMap row read in nanoseconds (the popcount
    /// tree is pipelined behind subsequent row reads; its depth shows up
    /// once per vector via [`Self::popcount_drain_ns`]).
    pub fn pcsa_step_ns(&self) -> f64 {
        self.t_pcsa_cycle_ns
    }

    /// Drain latency of a popcount tree of the given depth.
    pub fn popcount_drain_ns(&self, depth: u32) -> f64 {
        f64::from(depth) * self.t_popcount_stage_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_favor_pcsa_energy() {
        // A 256-column VMM step burns far more energy than a PCSA row read:
        // this asymmetry produces the paper's Fig. 8 (TacitMap ~5× worse).
        let e = XbarEnergies::default();
        let vmm = e.vmm_step_joules(256, 128 * 256, 256);
        let pcsa = e.pcsa_step_joules(256);
        assert!(
            vmm / pcsa > 10.0,
            "ADC-based step should dominate: {vmm} vs {pcsa}"
        );
    }

    #[test]
    fn default_ratios_favor_vmm_latency() {
        // One VMM step computes 256 popcounts; 256 PCSA row reads are much
        // slower in aggregate: this produces Fig. 7.
        let t = XbarTimings::default();
        let vmm = t.vmm_step_ns(256, 16);
        let pcsa_total = 256.0 * t.pcsa_step_ns();
        assert!(pcsa_total / vmm > 30.0, "{pcsa_total} vs {vmm}");
    }

    #[test]
    fn vmm_step_time_scales_with_adc_sharing() {
        let t = XbarTimings::default();
        assert!(t.vmm_step_ns(256, 1) > t.vmm_step_ns(256, 16));
        assert_eq!(t.vmm_step_ns(0, 4), t.t_settle_ns);
        // Ceiling division: 5 conversions over 4 ADCs = 2 rounds.
        assert!((t.vmm_step_ns(5, 4) - (10.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one ADC")]
    fn zero_adcs_rejected() {
        let _ = XbarTimings::default().vmm_step_ns(4, 0);
    }

    #[test]
    fn energy_helpers_are_affine() {
        let e = XbarEnergies::default();
        // Per-column marginal cost is constant (affine in `columns` with a
        // fixed row-drive term).
        let d1 = e.pcsa_step_joules(2) - e.pcsa_step_joules(1);
        let d2 = e.pcsa_step_joules(11) - e.pcsa_step_joules(10);
        assert!((d1 - d2).abs() < 1e-21);
        assert!((d1 - (e.e_pcsa_fj + e.e_popcount_bit_fj) * 1e-15).abs() < 1e-21);
        assert!((e.program_joules(100) - 100.0 * 10.0e-12).abs() < 1e-18);
    }

    #[test]
    fn popcount_drain_proportional_to_depth() {
        let t = XbarTimings::default();
        assert_eq!(t.popcount_drain_ns(0), 0.0);
        assert!((t.popcount_drain_ns(8) - 4.0).abs() < 1e-12);
    }
}
