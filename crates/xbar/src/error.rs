//! Error types for crossbar operations.

use std::error::Error;
use std::fmt;

/// Errors produced by crossbar programming and readout.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XbarError {
    /// A coordinate or sub-array exceeded the physical array.
    OutOfBounds {
        /// Requested row extent.
        row: usize,
        /// Requested column extent.
        col: usize,
        /// Physical row count.
        rows: usize,
        /// Physical column count.
        cols: usize,
    },
    /// A vector operand had the wrong length.
    DimensionMismatch {
        /// What operand mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// A fault profile was not a valid probability assignment.
    InvalidFault {
        /// What was wrong with the profile.
        reason: String,
    },
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "access at ({row}, {col}) exceeds {rows}×{cols} crossbar"),
            Self::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} has length {got}, expected {expected}"),
            Self::InvalidFault { reason } => write!(f, "invalid fault profile: {reason}"),
        }
    }
}

impl Error for XbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bounds() {
        let e = XbarError::OutOfBounds {
            row: 5,
            col: 2,
            rows: 4,
            cols: 4,
        };
        assert!(e.to_string().contains("4×4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync>() {}
        check::<XbarError>();
    }
}
