//! Electronic phase-change memory (ePCM) device model.
//!
//! A binary ePCM cell stores one bit as its conductance state:
//! crystalline (SET, high conductance `g_on`) for bit 1 and amorphous
//! (RESET, low conductance `g_off`) for bit 0. Real devices additionally
//! exhibit programming variability, read noise, and resistance drift —
//! all of which the paper cites as reasons to prefer the *binary* operating
//! point (Section II-C) and which the oPCM design sidesteps.

use rand::Rng;

/// Electrical and non-ideality parameters of a binary ePCM device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// SET-state (bit 1) conductance in siemens.
    pub g_on: f64,
    /// RESET-state (bit 0) conductance in siemens.
    pub g_off: f64,
    /// Log-normal programming variability σ (0 = ideal programming).
    pub program_sigma: f64,
    /// Gaussian read-noise σ as a fraction of `g_on` (0 = noiseless reads).
    pub read_sigma: f64,
    /// Resistance-drift exponent ν in `G(t) = G₀·(t/t₀)^(−ν)`; the
    /// amorphous state drifts, the crystalline state is taken as stable.
    pub drift_nu: f64,
}

impl DeviceParams {
    /// Ideal binary device: on/off ratio 1000, no variability or drift.
    ///
    /// Defaults follow the MNEMOSENE-style characterisation the paper
    /// references: `g_on = 100 µS`, `g_off = 0.1 µS`.
    pub fn ideal() -> Self {
        Self {
            g_on: 100e-6,
            g_off: 0.1e-6,
            program_sigma: 0.0,
            read_sigma: 0.0,
            drift_nu: 0.0,
        }
    }

    /// A realistic noisy device: 5% programming spread, 2% read noise and
    /// typical amorphous drift (ν ≈ 0.05).
    pub fn noisy() -> Self {
        Self {
            program_sigma: 0.05,
            read_sigma: 0.02,
            drift_nu: 0.05,
            ..Self::ideal()
        }
    }

    /// On/off conductance ratio.
    pub fn on_off_ratio(&self) -> f64 {
        self.g_on / self.g_off
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::ideal()
    }
}

/// One programmed binary ePCM device.
#[derive(Debug, Clone, PartialEq)]
pub struct EpcmDevice {
    stored: bool,
    conductance: f64,
}

impl EpcmDevice {
    /// Programs a device to `bit`, applying log-normal programming
    /// variability from `params`.
    pub fn program(bit: bool, params: &DeviceParams, rng: &mut impl Rng) -> Self {
        let nominal = if bit { params.g_on } else { params.g_off };
        let conductance = if params.program_sigma > 0.0 {
            nominal * lognormal(params.program_sigma, rng)
        } else {
            nominal
        };
        Self {
            stored: bit,
            conductance,
        }
    }

    /// Rebuilds a device from serialized state: the stored bit and the
    /// exact post-variability conductance a previous
    /// [`EpcmDevice::program`] produced. Restoring is not a re-program —
    /// no RNG draw happens and no write is counted.
    pub fn from_parts(stored: bool, conductance: f64) -> Self {
        Self {
            stored,
            conductance,
        }
    }

    /// The bit this device was programmed with.
    pub fn stored_bit(&self) -> bool {
        self.stored
    }

    /// Programmed conductance (post-variability), in siemens.
    pub fn conductance(&self) -> f64 {
        self.conductance
    }

    /// Conductance observed by one read: programmed value plus Gaussian
    /// read noise, floored at zero.
    pub fn read(&self, params: &DeviceParams, rng: &mut impl Rng) -> f64 {
        self.read_at(1.0, params, rng)
    }

    /// Conductance observed by one read taken at `t_ratio = t/t₀` after
    /// programming: amorphous drift ([`EpcmDevice::after_drift`]) resolves
    /// first, then Gaussian read noise is applied on top. `read_at(1.0, ..)`
    /// is exactly [`EpcmDevice::read`], including its RNG draw sequence.
    pub fn read_at(&self, t_ratio: f64, params: &DeviceParams, rng: &mut impl Rng) -> f64 {
        let base = self.after_drift(t_ratio, params);
        if params.read_sigma > 0.0 {
            (base + gaussian(rng) * params.read_sigma * params.g_on).max(0.0)
        } else {
            base
        }
    }

    /// Conductance after `t_ratio = t/t₀` of amorphous drift. Only the
    /// RESET (bit 0) state drifts; drift *lowers* the off conductance,
    /// which for binary sensing is benign — the paper's argument for
    /// binary PCM operation.
    pub fn after_drift(&self, t_ratio: f64, params: &DeviceParams) -> f64 {
        if self.stored || params.drift_nu == 0.0 || t_ratio <= 1.0 {
            self.conductance
        } else {
            self.conductance * t_ratio.powf(-params.drift_nu)
        }
    }
}

/// Standard normal sample via Box–Muller.
pub(crate) fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal multiplicative factor with log-σ `sigma` and unit median.
pub(crate) fn lognormal(sigma: f64, rng: &mut impl Rng) -> f64 {
    (gaussian(rng) * sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ideal_programming_is_exact() {
        let p = DeviceParams::ideal();
        let d1 = EpcmDevice::program(true, &p, &mut rng());
        let d0 = EpcmDevice::program(false, &p, &mut rng());
        assert_eq!(d1.conductance(), p.g_on);
        assert_eq!(d0.conductance(), p.g_off);
        assert!(d1.stored_bit());
        assert!(!d0.stored_bit());
    }

    #[test]
    fn ideal_read_is_noiseless() {
        let p = DeviceParams::ideal();
        let d = EpcmDevice::program(true, &p, &mut rng());
        let mut r = rng();
        assert_eq!(d.read(&p, &mut r), d.conductance());
        assert_eq!(d.read(&p, &mut r), d.conductance());
    }

    #[test]
    fn noisy_programming_spreads_but_separates_states() {
        let p = DeviceParams::noisy();
        let mut r = rng();
        let ons: Vec<f64> = (0..200)
            .map(|_| EpcmDevice::program(true, &p, &mut r).conductance())
            .collect();
        let offs: Vec<f64> = (0..200)
            .map(|_| EpcmDevice::program(false, &p, &mut r).conductance())
            .collect();
        let min_on = ons.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_off = offs.iter().cloned().fold(0.0, f64::max);
        // Binary states stay separable despite 5% spread — the robustness
        // argument of Section II-C.
        assert!(min_on > 10.0 * max_off);
        // And the spread is real.
        let max_on = ons.iter().cloned().fold(0.0, f64::max);
        assert!(max_on > min_on);
    }

    #[test]
    fn read_noise_has_roughly_correct_scale() {
        let p = DeviceParams {
            read_sigma: 0.02,
            ..DeviceParams::ideal()
        };
        let d = EpcmDevice::program(true, &p, &mut rng());
        let mut r = rng();
        let reads: Vec<f64> = (0..2000).map(|_| d.read(&p, &mut r)).collect();
        let mean = reads.iter().sum::<f64>() / reads.len() as f64;
        let var = reads.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / reads.len() as f64;
        let sigma = var.sqrt() / p.g_on;
        assert!((sigma - 0.02).abs() < 0.005, "σ={sigma}");
    }

    #[test]
    fn drift_only_affects_reset_state() {
        let p = DeviceParams::noisy();
        let mut r = rng();
        let d1 = EpcmDevice::program(true, &p, &mut r);
        let d0 = EpcmDevice::program(false, &p, &mut r);
        assert_eq!(d1.after_drift(1000.0, &p), d1.conductance());
        assert!(d0.after_drift(1000.0, &p) < d0.conductance());
    }

    #[test]
    fn read_at_drifts_then_adds_noise() {
        let p = DeviceParams {
            drift_nu: 0.2,
            ..DeviceParams::ideal()
        };
        let mut r = rng();
        let d0 = EpcmDevice::program(false, &p, &mut r);
        // Noiseless: read_at equals the pure drift resolution.
        assert_eq!(d0.read_at(1e4, &p, &mut r), d0.after_drift(1e4, &p));
        assert!(d0.read_at(1e4, &p, &mut r) < d0.conductance());
        // read(..) is read_at(1.0, ..) bit-for-bit, including RNG draws.
        let noisy = DeviceParams {
            read_sigma: 0.03,
            drift_nu: 0.2,
            ..DeviceParams::ideal()
        };
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(d0.read(&noisy, &mut r1), d0.read_at(1.0, &noisy, &mut r2));
    }

    #[test]
    fn on_off_ratio() {
        assert!((DeviceParams::ideal().on_off_ratio() - 1000.0).abs() < 1.0);
    }
}
