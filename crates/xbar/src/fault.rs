//! Seeded, deterministic cell-fault injection.
//!
//! Real PCM devices die: cells get stuck in the SET state (always
//! `g_on`), stuck in the RESET state (always `g_off`), or fail open
//! (no current path at all). A [`FaultConfig`] describes a fault
//! *population* — an independent per-device Bernoulli draw for each
//! fault class — that a [`CrossbarArray`](crate::CrossbarArray)
//! resolves per cell from a hash of `(seed, row, col)`:
//!
//! * **Deterministic** — the fault map is a pure function of the seed
//!   and the cell coordinates, so replaying the same profile on a
//!   freshly programmed array reproduces the same broken cells, and
//!   the snapshot fast path stays valid
//!   ([`CrossbarArray::read_is_deterministic`](crate::CrossbarArray::read_is_deterministic)
//!   is unaffected).
//! * **Order-independent** — programming order, reprogramming, and
//!   read order never change which cells are faulty (a defect is a
//!   property of the physical cell, not of the value written to it).
//!
//! Targeted single-cell faults for tests are injected with
//! [`CrossbarArray::kill_cell`](crate::CrossbarArray::kill_cell),
//! which overrides the Bernoulli map at one coordinate.

use crate::error::XbarError;

/// How one faulty cell misbehaves, regardless of what was programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFault {
    /// Permanently crystalline: every read sees `g_on`.
    StuckAtOn,
    /// Permanently amorphous: every read sees `g_off`.
    StuckAtOff,
    /// Open circuit: the cell contributes no current (conductance 0).
    Dead,
}

/// A seeded Bernoulli fault profile over a crossbar's cells.
///
/// Each rate is the independent per-cell probability of that fault
/// class; at most one fault applies per cell (dead wins over stuck-on
/// wins over stuck-off in the shared draw). All-zero rates are the
/// identity profile — see [`FaultConfig::is_vacuous`].
///
/// ```
/// use eb_xbar::FaultConfig;
///
/// let f = FaultConfig::dead_cells(0.05, 7);
/// assert!(f.validate().is_ok());
/// assert!(!f.is_vacuous());
/// // The fault map is a pure function of (seed, row, col).
/// assert_eq!(f.cell_fault(3, 4), f.cell_fault(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-cell probability of a stuck-at-`g_on` fault.
    pub stuck_on: f64,
    /// Per-cell probability of a stuck-at-`g_off` fault.
    pub stuck_off: f64,
    /// Per-cell probability of an open (dead) cell.
    pub dead: f64,
    /// Seed of the deterministic per-cell fault map.
    pub seed: u64,
}

impl FaultConfig {
    /// The identity profile: no faults at any rate.
    pub fn none() -> Self {
        Self {
            stuck_on: 0.0,
            stuck_off: 0.0,
            dead: 0.0,
            seed: 0,
        }
    }

    /// A dead-cell-only profile.
    pub fn dead_cells(rate: f64, seed: u64) -> Self {
        Self {
            dead: rate,
            ..Self::none().with_seed(seed)
        }
    }

    /// A stuck-at-`g_on`-only profile.
    pub fn stuck_at_on(rate: f64, seed: u64) -> Self {
        Self {
            stuck_on: rate,
            ..Self::none().with_seed(seed)
        }
    }

    /// A stuck-at-`g_off`-only profile.
    pub fn stuck_at_off(rate: f64, seed: u64) -> Self {
        Self {
            stuck_off: rate,
            ..Self::none().with_seed(seed)
        }
    }

    /// The same rates under a different fault-map seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total per-cell fault probability (sum of the class rates).
    pub fn total_rate(&self) -> f64 {
        self.stuck_on + self.stuck_off + self.dead
    }

    /// `true` when the profile can never fault a cell (all rates zero).
    /// A vacuous profile is bit-exact to no profile at all, which is why
    /// the serving runtime accepts it on every backend.
    pub fn is_vacuous(&self) -> bool {
        self.total_rate() == 0.0
    }

    /// Checks that every rate is a probability and the classes are
    /// mutually exclusive (total ≤ 1).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidFault`] describing the violation.
    pub fn validate(&self) -> Result<(), XbarError> {
        for (name, rate) in [
            ("stuck_on", self.stuck_on),
            ("stuck_off", self.stuck_off),
            ("dead", self.dead),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(XbarError::InvalidFault {
                    reason: format!("{name} rate {rate} is not a probability in [0, 1]"),
                });
            }
        }
        if self.total_rate() > 1.0 {
            return Err(XbarError::InvalidFault {
                reason: format!(
                    "fault class rates sum to {} > 1 (classes are mutually exclusive)",
                    self.total_rate()
                ),
            });
        }
        Ok(())
    }

    /// The fault (if any) this profile assigns to cell `(r, c)` — a pure
    /// function of `(seed, r, c)`, independent of array size, programming
    /// history, or evaluation order.
    pub fn cell_fault(&self, r: usize, c: usize) -> Option<CellFault> {
        if self.is_vacuous() {
            return None;
        }
        let coord = ((r as u64) << 32) ^ (c as u64) ^ 0xA5A5_5A5A_C3C3_3C3C;
        let bits = splitmix64(self.seed ^ splitmix64(coord));
        // 53 uniform bits → u ∈ [0, 1); compare against stacked rates.
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.dead {
            Some(CellFault::Dead)
        } else if u < self.dead + self.stuck_on {
            Some(CellFault::StuckAtOn)
        } else if u < self.total_rate() {
            Some(CellFault::StuckAtOff)
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacuous_profile_never_faults() {
        let f = FaultConfig::none();
        assert!(f.is_vacuous());
        assert!(f.validate().is_ok());
        for r in 0..64 {
            for c in 0..64 {
                assert_eq!(f.cell_fault(r, c), None);
            }
        }
    }

    #[test]
    fn rates_out_of_range_rejected() {
        assert!(FaultConfig::dead_cells(-0.1, 0).validate().is_err());
        assert!(FaultConfig::dead_cells(1.1, 0).validate().is_err());
        assert!(FaultConfig::dead_cells(f64::NAN, 0).validate().is_err());
        let sum_over_one = FaultConfig {
            stuck_on: 0.5,
            stuck_off: 0.4,
            dead: 0.3,
            seed: 0,
        };
        assert!(sum_over_one.validate().is_err());
        assert!(FaultConfig::dead_cells(1.0, 0).validate().is_ok());
    }

    #[test]
    fn fault_map_is_deterministic_and_seed_sensitive() {
        let a = FaultConfig::dead_cells(0.3, 11);
        let b = FaultConfig::dead_cells(0.3, 12);
        let map = |f: &FaultConfig| -> Vec<Option<CellFault>> {
            (0..32)
                .flat_map(|r| (0..32).map(move |c| (r, c)))
                .map(|(r, c)| f.cell_fault(r, c))
                .collect()
        };
        assert_eq!(map(&a), map(&a));
        assert_ne!(map(&a), map(&b), "different seeds must move the faults");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let f = FaultConfig::dead_cells(0.2, 3);
        let n = 200 * 200;
        let hits = (0..200)
            .flat_map(|r| (0..200).map(move |c| (r, c)))
            .filter(|&(r, c)| f.cell_fault(r, c).is_some())
            .count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.2).abs() < 0.02, "empirical dead rate {p}");
    }

    #[test]
    fn classes_partition_the_draw() {
        let f = FaultConfig {
            stuck_on: 0.3,
            stuck_off: 0.3,
            dead: 0.3,
            seed: 5,
        };
        let mut counts = [0usize; 3];
        for r in 0..100 {
            for c in 0..100 {
                match f.cell_fault(r, c) {
                    Some(CellFault::Dead) => counts[0] += 1,
                    Some(CellFault::StuckAtOn) => counts[1] += 1,
                    Some(CellFault::StuckAtOff) => counts[2] += 1,
                    None => {}
                }
            }
        }
        for (i, &n) in counts.iter().enumerate() {
            let p = n as f64 / 10_000.0;
            assert!((p - 0.3).abs() < 0.03, "class {i} rate {p}");
        }
    }

    #[test]
    fn total_rate_one_faults_everything() {
        let f = FaultConfig::stuck_at_off(1.0, 9);
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(f.cell_fault(r, c), Some(CellFault::StuckAtOff));
            }
        }
    }
}
