//! The analog VMM engine: crossbar + DAC row drive + ADC column readout.

use crate::array::CrossbarArray;
use crate::error::XbarError;
use crate::periphery::{Adc, Dac};
use eb_bitnn::BitVec;
use rand::Rng;

/// A VMM-capable crossbar: the array plus its read periphery.
///
/// Drives a binary input vector onto the word lines and digitizes every
/// bit-line current. With the TacitMap layout programmed into the array,
/// one [`VmmEngine::vmm_counts`] call returns `popcount(In ⊙ Wⱼ)` for every
/// stored weight vector `j` — the paper's single-step XNOR+Popcount.
///
/// # Examples
///
/// ```
/// use eb_xbar::{CrossbarArray, DeviceParams, VmmEngine};
/// use eb_bitnn::{BitMatrix, BitVec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut xbar = CrossbarArray::new(4, 2, DeviceParams::ideal());
/// xbar.program_matrix(&BitMatrix::from_fn(4, 2, |r, _| r % 2 == 0), &mut rng)?;
/// let engine = VmmEngine::with_defaults(xbar);
/// let counts = engine.vmm_counts(&BitVec::ones(4), &mut rng)?;
/// assert_eq!(counts, vec![2, 2]);
/// # Ok::<(), eb_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VmmEngine {
    array: CrossbarArray,
    dac: Dac,
    adc: Adc,
}

impl VmmEngine {
    /// Wraps an array with explicit periphery.
    pub fn new(array: CrossbarArray, dac: Dac, adc: Adc) -> Self {
        Self { array, dac, adc }
    }

    /// Wraps an array with a 0.2 V binary DAC and a 9-bit ADC whose unit
    /// current matches one on-cell at that read voltage.
    pub fn with_defaults(array: CrossbarArray) -> Self {
        let v_read = 0.2;
        let i_unit = v_read * array.params().g_on;
        Self {
            dac: Dac::binary(v_read),
            adc: Adc::new(9, i_unit),
            array,
        }
    }

    /// The underlying array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Mutable access to the underlying array (for programming).
    pub fn array_mut(&mut self) -> &mut CrossbarArray {
        &mut self.array
    }

    /// The column ADC.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Replaces the ADC (e.g. to inject conversion noise).
    pub fn set_adc(&mut self, adc: Adc) {
        self.adc = adc;
    }

    /// One crossbar activation: drives `input` on the word lines and
    /// digitizes every column. Returns one integer count per column.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] if `input.len()` differs
    /// from the row count.
    pub fn vmm_counts(&self, input: &BitVec, rng: &mut impl Rng) -> Result<Vec<u32>, XbarError> {
        let v_read = self.dac.convert(1);
        let currents = self.array.all_column_currents(input, v_read, rng)?;
        Ok(currents
            .into_iter()
            .map(|i| self.adc.convert(i, rng))
            .collect())
    }

    /// Like [`Self::vmm_counts`] but restricted to columns
    /// `[col0, col0 + n)`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] on drive-length mismatch or
    /// [`XbarError::OutOfBounds`] if the column range exceeds the array.
    pub fn vmm_counts_cols(
        &self,
        input: &BitVec,
        col0: usize,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, XbarError> {
        if col0 + n > self.array.cols() {
            return Err(XbarError::OutOfBounds {
                row: 0,
                col: col0 + n,
                rows: self.array.rows(),
                cols: self.array.cols(),
            });
        }
        let v_read = self.dac.convert(1);
        (col0..col0 + n)
            .map(|c| {
                self.array
                    .column_current(input, c, v_read, rng)
                    .map(|i| self.adc.convert(i, rng))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceParams;
    use eb_bitnn::{ops, BitMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn engine_from_bits(bits: &BitMatrix) -> VmmEngine {
        let mut r = rng();
        let mut array = CrossbarArray::new(bits.rows(), bits.cols(), DeviceParams::ideal());
        array.program_matrix(bits, &mut r).unwrap();
        VmmEngine::with_defaults(array)
    }

    #[test]
    fn vmm_counts_equal_and_accumulate() {
        // Column c stores column bits; AND-accumulate with the drive.
        let bits = BitMatrix::from_fn(8, 3, |r, c| (r + c) % 3 != 0);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let drive = BitVec::from_bools(&[true, false, true, true, false, true, false, true]);
        let counts = engine.vmm_counts(&drive, &mut r).unwrap();
        for c in 0..3 {
            let expect = drive.and(&bits.col(c)).popcount();
            assert_eq!(counts[c], expect, "column {c}");
        }
    }

    #[test]
    fn tacitmap_layout_recovers_xnor_popcount() {
        // Store [w ; w̄] vertically, drive [v ; v̄]: the analog count is the
        // XNOR popcount (paper Fig. 2-(b)).
        let w = BitVec::from_bools(&[true, false, true, true, false]);
        let v = BitVec::from_bools(&[false, false, true, true, true]);
        let column = w.concat(&w.complement());
        let bits = BitMatrix::from_fn(10, 1, |r, _| column.get(r) == Some(true));
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let counts = engine.vmm_counts(&v.with_complement(), &mut r).unwrap();
        assert_eq!(counts[0], ops::xnor_popcount(&v, &w));
    }

    #[test]
    fn counts_exact_with_realistic_off_current() {
        // Full 256-row column with realistic on/off ratio still reads the
        // exact popcount (off-current offset < 0.5 LSB).
        let bits = BitMatrix::from_fn(256, 1, |r, _| r % 3 == 0);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let counts = engine.vmm_counts(&BitVec::ones(256), &mut r).unwrap();
        assert_eq!(counts[0], bits.col(0).popcount());
    }

    #[test]
    fn column_range_readout() {
        let bits = BitMatrix::from_fn(4, 6, |r, c| r == c % 4);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let all = engine.vmm_counts(&BitVec::ones(4), &mut r).unwrap();
        let mid = engine
            .vmm_counts_cols(&BitVec::ones(4), 2, 3, &mut r)
            .unwrap();
        assert_eq!(mid, all[2..5].to_vec());
        assert!(engine
            .vmm_counts_cols(&BitVec::ones(4), 5, 3, &mut r)
            .is_err());
    }

    #[test]
    fn noisy_adc_degrades_gracefully() {
        let bits = BitMatrix::from_fn(64, 1, |r, _| r % 2 == 0);
        let mut engine = engine_from_bits(&bits);
        let i_unit = engine.adc().i_unit;
        engine.set_adc(Adc::new(9, i_unit).with_noise(1.5));
        let mut r = rng();
        let mut errs = 0usize;
        for _ in 0..100 {
            let c = engine.vmm_counts(&BitVec::ones(64), &mut r).unwrap()[0];
            if c != 32 {
                errs += 1;
            }
        }
        assert!(errs > 0, "1.5 LSB noise should cause misreads");
        // But reads stay near the truth.
        let c = engine.vmm_counts(&BitVec::ones(64), &mut r).unwrap()[0];
        assert!((i64::from(c) - 32).abs() < 10);
    }
}
