//! The analog VMM engine: crossbar + DAC row drive + ADC column readout.

use crate::array::CrossbarArray;
use crate::error::XbarError;
use crate::periphery::{Adc, Dac};
use eb_bitnn::BitVec;
use rand::Rng;

/// A VMM-capable crossbar: the array plus its read periphery.
///
/// Drives a binary input vector onto the word lines and digitizes every
/// bit-line current. With the TacitMap layout programmed into the array,
/// one [`VmmEngine::vmm_counts`] call returns `popcount(In ⊙ Wⱼ)` for every
/// stored weight vector `j` — the paper's single-step XNOR+Popcount.
///
/// # Examples
///
/// ```
/// use eb_xbar::{CrossbarArray, DeviceParams, VmmEngine};
/// use eb_bitnn::{BitMatrix, BitVec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut xbar = CrossbarArray::new(4, 2, DeviceParams::ideal());
/// xbar.program_matrix(&BitMatrix::from_fn(4, 2, |r, _| r % 2 == 0), &mut rng)?;
/// let engine = VmmEngine::with_defaults(xbar);
/// let counts = engine.vmm_counts(&BitVec::ones(4), &mut rng)?;
/// assert_eq!(counts, vec![2, 2]);
/// # Ok::<(), eb_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VmmEngine {
    array: CrossbarArray,
    dac: Dac,
    adc: Adc,
}

impl VmmEngine {
    /// Wraps an array with explicit periphery.
    pub fn new(array: CrossbarArray, dac: Dac, adc: Adc) -> Self {
        Self { array, dac, adc }
    }

    /// Wraps an array with a 0.2 V binary DAC and a 9-bit ADC whose unit
    /// current matches one on-cell at that read voltage.
    pub fn with_defaults(array: CrossbarArray) -> Self {
        let v_read = 0.2;
        let i_unit = v_read * array.params().g_on;
        Self {
            dac: Dac::binary(v_read),
            adc: Adc::new(9, i_unit),
            array,
        }
    }

    /// The underlying array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Mutable access to the underlying array (for programming).
    pub fn array_mut(&mut self) -> &mut CrossbarArray {
        &mut self.array
    }

    /// The column ADC.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Replaces the ADC (e.g. to inject conversion noise).
    pub fn set_adc(&mut self, adc: Adc) {
        self.adc = adc;
    }

    /// One crossbar activation: drives `input` on the word lines and
    /// digitizes every column. Returns one integer count per column.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] if `input.len()` differs
    /// from the row count.
    pub fn vmm_counts(&self, input: &BitVec, rng: &mut impl Rng) -> Result<Vec<u32>, XbarError> {
        let v_read = self.dac.convert(1);
        let currents = self.array.all_column_currents(input, v_read, rng)?;
        Ok(currents
            .into_iter()
            .map(|i| self.adc.convert(i, rng))
            .collect())
    }

    /// Batched VMM: digitizes every input vector against the full array,
    /// amortizing the periphery setup (DAC conversion, dimension checks,
    /// device resolution) across the whole batch.
    ///
    /// When the device model has no read noise, the programmed
    /// conductances are snapshotted **once** and each input reduces to a
    /// dense accumulate over its set rows — identical results to calling
    /// [`Self::vmm_counts`] per input, at a fraction of the cost. With
    /// read noise (or ADC noise) present, the batch falls back to the
    /// exact per-input path so the RNG draw sequence — and therefore every
    /// sampled count — matches repeated `vmm_counts` calls bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] if any input's length
    /// differs from the row count.
    pub fn vmm_counts_batch(
        &self,
        inputs: &[BitVec],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, XbarError> {
        self.check_drive_lengths(inputs)?;
        if !self.periphery_is_deterministic() {
            // Noisy periphery: preserve the exact RNG draw order of
            // repeated single-vector activations.
            return inputs.iter().map(|v| self.vmm_counts(v, rng)).collect();
        }
        Ok(self.snapshot_counts(inputs, 0, self.array.cols(), rng))
    }

    /// Validates every drive against the row count.
    fn check_drive_lengths(&self, inputs: &[BitVec]) -> Result<(), XbarError> {
        let rows = self.array.rows();
        for input in inputs {
            if input.len() != rows {
                return Err(XbarError::DimensionMismatch {
                    what: "row drive",
                    expected: rows,
                    got: input.len(),
                });
            }
        }
        Ok(())
    }

    /// `true` when neither device reads nor ADC conversions draw noise,
    /// i.e. when the snapshot fast path is exact — and, because no RNG
    /// is ever drawn, when callers may fan the engine out across threads
    /// without perturbing their noise streams.
    pub fn periphery_is_deterministic(&self) -> bool {
        self.array.read_is_deterministic() && self.adc.noise_sigma <= 0.0
    }

    /// Deterministic batch fast path over columns `[col0, col0 + n)`:
    /// snapshots the programmed conductances once, then accumulates each
    /// input's column currents over its set rows. Callers must have
    /// validated drive lengths and checked [`Self::periphery_is_deterministic`]
    /// (the ADC conversions draw no noise, so `rng` is untouched).
    fn snapshot_counts(
        &self,
        inputs: &[BitVec],
        col0: usize,
        n: usize,
        rng: &mut impl Rng,
    ) -> Vec<Vec<u32>> {
        let cols = self.array.cols();
        let v_read = self.dac.convert(1);
        let g = self.array.conductance_snapshot_cached();
        let mut out = Vec::with_capacity(inputs.len());
        for input in inputs {
            let mut currents = vec![0.0f64; n];
            for r in input.iter_ones() {
                let row = &g[r * cols + col0..r * cols + col0 + n];
                for (acc, gg) in currents.iter_mut().zip(row) {
                    *acc += v_read * gg;
                }
            }
            out.push(
                currents
                    .into_iter()
                    .map(|i| self.adc.convert(i, rng))
                    .collect(),
            );
        }
        out
    }

    /// Batched variant of [`Self::vmm_counts_cols`]: every input vector
    /// against columns `[col0, col0 + n)`, with the same noiseless
    /// snapshot fast path / noisy exact-order fallback as
    /// [`Self::vmm_counts_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] on drive-length mismatch or
    /// [`XbarError::OutOfBounds`] if the column range exceeds the array.
    pub fn vmm_counts_cols_batch(
        &self,
        inputs: &[BitVec],
        col0: usize,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, XbarError> {
        if col0 + n > self.array.cols() {
            return Err(XbarError::OutOfBounds {
                row: 0,
                col: col0 + n,
                rows: self.array.rows(),
                cols: self.array.cols(),
            });
        }
        self.check_drive_lengths(inputs)?;
        if !self.periphery_is_deterministic() {
            return inputs
                .iter()
                .map(|v| self.vmm_counts_cols(v, col0, n, rng))
                .collect();
        }
        Ok(self.snapshot_counts(inputs, col0, n, rng))
    }

    /// Like [`Self::vmm_counts`] but restricted to columns
    /// `[col0, col0 + n)`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] on drive-length mismatch or
    /// [`XbarError::OutOfBounds`] if the column range exceeds the array.
    pub fn vmm_counts_cols(
        &self,
        input: &BitVec,
        col0: usize,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, XbarError> {
        if col0 + n > self.array.cols() {
            return Err(XbarError::OutOfBounds {
                row: 0,
                col: col0 + n,
                rows: self.array.rows(),
                cols: self.array.cols(),
            });
        }
        let v_read = self.dac.convert(1);
        (col0..col0 + n)
            .map(|c| {
                self.array
                    .column_current(input, c, v_read, rng)
                    .map(|i| self.adc.convert(i, rng))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceParams;
    use eb_bitnn::{ops, BitMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn engine_from_bits(bits: &BitMatrix) -> VmmEngine {
        let mut r = rng();
        let mut array = CrossbarArray::new(bits.rows(), bits.cols(), DeviceParams::ideal());
        array.program_matrix(bits, &mut r).unwrap();
        VmmEngine::with_defaults(array)
    }

    #[test]
    fn vmm_counts_equal_and_accumulate() {
        // Column c stores column bits; AND-accumulate with the drive.
        let bits = BitMatrix::from_fn(8, 3, |r, c| (r + c) % 3 != 0);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let drive = BitVec::from_bools(&[true, false, true, true, false, true, false, true]);
        let counts = engine.vmm_counts(&drive, &mut r).unwrap();
        for c in 0..3 {
            let expect = drive.and(&bits.col(c)).popcount();
            assert_eq!(counts[c], expect, "column {c}");
        }
    }

    #[test]
    fn tacitmap_layout_recovers_xnor_popcount() {
        // Store [w ; w̄] vertically, drive [v ; v̄]: the analog count is the
        // XNOR popcount (paper Fig. 2-(b)).
        let w = BitVec::from_bools(&[true, false, true, true, false]);
        let v = BitVec::from_bools(&[false, false, true, true, true]);
        let column = w.concat(&w.complement());
        let bits = BitMatrix::from_fn(10, 1, |r, _| column.get(r) == Some(true));
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let counts = engine.vmm_counts(&v.with_complement(), &mut r).unwrap();
        assert_eq!(counts[0], ops::xnor_popcount(&v, &w));
    }

    #[test]
    fn counts_exact_with_realistic_off_current() {
        // Full 256-row column with realistic on/off ratio still reads the
        // exact popcount (off-current offset < 0.5 LSB).
        let bits = BitMatrix::from_fn(256, 1, |r, _| r % 3 == 0);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let counts = engine.vmm_counts(&BitVec::ones(256), &mut r).unwrap();
        assert_eq!(counts[0], bits.col(0).popcount());
    }

    #[test]
    fn column_range_readout() {
        let bits = BitMatrix::from_fn(4, 6, |r, c| r == c % 4);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let all = engine.vmm_counts(&BitVec::ones(4), &mut r).unwrap();
        let mid = engine
            .vmm_counts_cols(&BitVec::ones(4), 2, 3, &mut r)
            .unwrap();
        assert_eq!(mid, all[2..5].to_vec());
        assert!(engine
            .vmm_counts_cols(&BitVec::ones(4), 5, 3, &mut r)
            .is_err());
    }

    #[test]
    fn batch_matches_repeated_single_vmms_ideal() {
        let bits = BitMatrix::from_fn(64, 9, |r, c| (r * 5 + c) % 4 != 1);
        let engine = engine_from_bits(&bits);
        let inputs: Vec<BitVec> = (0..7)
            .map(|k| BitVec::from_bools(&(0..64).map(|i| (i + k) % 3 == 0).collect::<Vec<_>>()))
            .collect();
        let mut r1 = rng();
        let batch = engine.vmm_counts_batch(&inputs, &mut r1).unwrap();
        let mut r2 = rng();
        for (k, v) in inputs.iter().enumerate() {
            assert_eq!(
                batch[k],
                engine.vmm_counts(v, &mut r2).unwrap(),
                "input {k}"
            );
        }
    }

    #[test]
    fn batch_matches_repeated_singles_under_noise_with_same_seed() {
        // With read + ADC noise the batch falls back to the per-input
        // path, so an identically seeded RNG must reproduce the exact
        // noisy counts of repeated vmm_counts calls.
        let mut r = rng();
        let mut array = CrossbarArray::new(32, 4, DeviceParams::noisy());
        array
            .program_matrix(&BitMatrix::from_fn(32, 4, |a, b| (a + b) % 2 == 0), &mut r)
            .unwrap();
        let mut engine = VmmEngine::with_defaults(array);
        let i_unit = engine.adc().i_unit;
        engine.set_adc(Adc::new(9, i_unit).with_noise(0.8));
        let inputs: Vec<BitVec> = (0..5)
            .map(|k| {
                BitVec::from_bools(&(0..32).map(|i| (i * (k + 2)) % 5 < 2).collect::<Vec<_>>())
            })
            .collect();
        let mut r1 = StdRng::seed_from_u64(1234);
        let batch = engine.vmm_counts_batch(&inputs, &mut r1).unwrap();
        let mut r2 = StdRng::seed_from_u64(1234);
        let singles: Vec<Vec<u32>> = inputs
            .iter()
            .map(|v| engine.vmm_counts(v, &mut r2).unwrap())
            .collect();
        assert_eq!(batch, singles);
    }

    #[test]
    fn drifted_batch_matches_drifted_singles() {
        // A low on/off-ratio device where off-current carries real weight:
        // drift then visibly changes the ADC counts, and the snapshot fast
        // path must agree with per-input reads on the drifted conductances.
        let p = DeviceParams {
            g_on: 100e-6,
            g_off: 40e-6,
            drift_nu: 0.3,
            ..DeviceParams::ideal()
        };
        let mut r = rng();
        let mut array = CrossbarArray::new(32, 3, p);
        array
            .program_matrix(&BitMatrix::from_fn(32, 3, |a, b| (a + b) % 2 == 0), &mut r)
            .unwrap();
        array.set_drift_t_ratio(1e6);
        let engine = VmmEngine::with_defaults(array);
        let inputs: Vec<BitVec> = (0..4)
            .map(|k| BitVec::from_bools(&(0..32).map(|i| (i + k) % 3 != 0).collect::<Vec<_>>()))
            .collect();
        let batch = engine.vmm_counts_batch(&inputs, &mut r).unwrap();
        for (k, v) in inputs.iter().enumerate() {
            assert_eq!(batch[k], engine.vmm_counts(v, &mut r).unwrap(), "input {k}");
        }
        // And the drift actually moved the counts vs an undrifted twin.
        let mut r2 = rng();
        let mut fresh = CrossbarArray::new(32, 3, engine.array().params().clone());
        fresh
            .program_matrix(&BitMatrix::from_fn(32, 3, |a, b| (a + b) % 2 == 0), &mut r2)
            .unwrap();
        let undrifted = VmmEngine::with_defaults(fresh)
            .vmm_counts_batch(&inputs, &mut r2)
            .unwrap();
        assert_ne!(
            batch, undrifted,
            "drift at 40 µS off-conductance must move counts"
        );
    }

    #[test]
    fn batch_cols_matches_column_range_readout() {
        let bits = BitMatrix::from_fn(16, 8, |r, c| r == c % 16 || (r + c) % 3 == 0);
        let engine = engine_from_bits(&bits);
        let inputs: Vec<BitVec> = (0..4)
            .map(|k| BitVec::from_bools(&(0..16).map(|i| (i + k) % 2 == 0).collect::<Vec<_>>()))
            .collect();
        let mut r = rng();
        let batch = engine.vmm_counts_cols_batch(&inputs, 2, 5, &mut r).unwrap();
        for (k, v) in inputs.iter().enumerate() {
            let single = engine.vmm_counts_cols(v, 2, 5, &mut r).unwrap();
            assert_eq!(batch[k], single, "input {k}");
        }
        assert!(engine.vmm_counts_cols_batch(&inputs, 5, 4, &mut r).is_err());
    }

    #[test]
    fn batch_rejects_bad_lengths() {
        let bits = BitMatrix::from_fn(8, 2, |r, _| r % 2 == 0);
        let engine = engine_from_bits(&bits);
        let mut r = rng();
        let inputs = vec![BitVec::ones(8), BitVec::ones(7)];
        assert!(matches!(
            engine.vmm_counts_batch(&inputs, &mut r),
            Err(XbarError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn noisy_readouts_replay_from_same_seed() {
        let mut r = rng();
        let mut array = CrossbarArray::new(48, 6, DeviceParams::noisy());
        array
            .program_matrix(
                &BitMatrix::from_fn(48, 6, |a, b| (a + 2 * b) % 3 == 0),
                &mut r,
            )
            .unwrap();
        let mut engine = VmmEngine::with_defaults(array);
        let i_unit = engine.adc().i_unit;
        engine.set_adc(Adc::new(9, i_unit).with_noise(0.9));
        let inputs: Vec<BitVec> = (0..3)
            .map(|k| BitVec::from_bools(&(0..48).map(|i| (i + k) % 2 == 0).collect::<Vec<_>>()))
            .collect();
        let run = |seed: u64| {
            let mut seeded = StdRng::seed_from_u64(seed);
            let e = engine.clone();
            let mut out = e.vmm_counts_batch(&inputs, &mut seeded).unwrap();
            out.push(e.vmm_counts(&inputs[0], &mut seeded).unwrap());
            out.push(e.vmm_counts_cols(&inputs[1], 1, 4, &mut seeded).unwrap());
            out
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn noisy_adc_degrades_gracefully() {
        let bits = BitMatrix::from_fn(64, 1, |r, _| r % 2 == 0);
        let mut engine = engine_from_bits(&bits);
        let i_unit = engine.adc().i_unit;
        engine.set_adc(Adc::new(9, i_unit).with_noise(1.5));
        let mut r = rng();
        let mut errs = 0usize;
        for _ in 0..100 {
            let c = engine.vmm_counts(&BitVec::ones(64), &mut r).unwrap()[0];
            if c != 32 {
                errs += 1;
            }
        }
        assert!(errs > 0, "1.5 LSB noise should cause misreads");
        // But reads stay near the truth.
        let c = engine.vmm_counts(&BitVec::ones(64), &mut r).unwrap()[0];
        assert!((i64::from(c) - 32).abs() < 10);
    }
}
