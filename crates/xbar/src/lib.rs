//! # eb-xbar — Electronic PCM crossbar substrate
//!
//! Models the memristor-style crossbar that hosts both the paper's
//! baseline mapping (CustBinaryMap on 2T2R cells with PCSA readout) and
//! TacitMap (1T1R cells with ADC readout):
//!
//! * [`DeviceParams`]/[`EpcmDevice`] — binary ePCM devices with
//!   programming variability, read noise and amorphous drift.
//! * [`CrossbarArray`] — the device grid with Kirchhoff column-current
//!   accumulation.
//! * [`Dac`], [`Adc`], [`Pcsa`], [`PopcountTree`] — the two readout styles
//!   whose asymmetric cost drives the paper's results.
//! * [`VmmEngine`] — array + periphery, computing whole VMMs per step.
//! * [`FaultConfig`]/[`CellFault`] — seeded, deterministic stuck-at and
//!   dead-cell fault injection for device-lifetime studies.
//! * [`XbarTimings`]/[`XbarEnergies`]/[`XbarConfig`] — calibrated latency
//!   and energy constants consumed by the accelerator models in `eb-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod config;
mod cost;
mod device;
mod error;
mod fault;
mod periphery;
mod vmm;

pub use array::{CellKind, CrossbarArray};
pub use config::XbarConfig;
pub use cost::{XbarEnergies, XbarTimings};
pub use device::{DeviceParams, EpcmDevice};
pub use error::XbarError;
pub use fault::{CellFault, FaultConfig};
pub use periphery::{Adc, Dac, Pcsa, PopcountTree};
pub use vmm::VmmEngine;
