//! Crossbar periphery: DACs, ADCs, and the precharge sense amplifier.
//!
//! TacitMap reads XNOR+popcount results through **ADCs** (one analog
//! conversion yields the whole popcount); CustBinaryMap reads single XNOR
//! bits through **PCSAs** (differential sense amplifiers) and popcounts
//! digitally. The asymmetric cost of those two readout styles is the root
//! of the paper's latency/energy trade-off (Figs. 7 and 8).

use crate::device::gaussian;
use rand::Rng;

/// A digital-to-analog converter driving a word line.
#[derive(Debug, Clone, PartialEq)]
pub struct Dac {
    /// Resolution in bits (1 for binary row drives).
    pub bits: u8,
    /// Full-scale output voltage.
    pub v_full: f64,
}

impl Dac {
    /// A 1-bit DAC (binary row driver) with the given read voltage.
    pub fn binary(v_read: f64) -> Self {
        Self {
            bits: 1,
            v_full: v_read,
        }
    }

    /// Converts a digital code to a voltage.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the DAC resolution.
    pub fn convert(&self, code: u32) -> f64 {
        let max = (1u32 << self.bits) - 1;
        assert!(code <= max, "code {code} exceeds {}-bit DAC", self.bits);
        self.v_full * f64::from(code) / f64::from(max)
    }
}

/// A successive-approximation ADC digitizing a column current.
///
/// The ADC is configured with a *unit current* (the current of one active
/// on-cell) and returns the nearest integer count — exactly the popcount
/// when noise and off-currents are small.
#[derive(Debug, Clone, PartialEq)]
pub struct Adc {
    /// Resolution in bits.
    pub bits: u8,
    /// Current of a single active on-cell (amps), the LSB of the count.
    pub i_unit: f64,
    /// Input-referred RMS noise as a fraction of `i_unit`.
    pub noise_sigma: f64,
}

impl Adc {
    /// Creates an ADC with the given resolution and unit current, noiseless.
    pub fn new(bits: u8, i_unit: f64) -> Self {
        Self {
            bits,
            i_unit,
            noise_sigma: 0.0,
        }
    }

    /// Sets the input-referred noise (fraction of one LSB).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Maximum representable count.
    pub fn max_code(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Digitizes a current into an integer count.
    pub fn convert(&self, current: f64, rng: &mut impl Rng) -> u32 {
        let noisy = if self.noise_sigma > 0.0 {
            current + gaussian(rng) * self.noise_sigma * self.i_unit
        } else {
            current
        };
        let code = (noisy / self.i_unit).round();
        code.clamp(0.0, f64::from(self.max_code())) as u32
    }
}

/// A precharge sense amplifier (PCSA): the differential, single-bit sense
/// used by the CustBinaryMap baseline (Hirtzlin et al.).
///
/// It compares the currents of a complementary 2T2R device pair and
/// resolves a single bit; offset noise models sense-margin failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Pcsa {
    /// Input-referred offset noise in amps RMS (0 = ideal).
    pub offset_sigma: f64,
}

impl Pcsa {
    /// An ideal PCSA.
    pub fn ideal() -> Self {
        Self { offset_sigma: 0.0 }
    }

    /// A PCSA with the given RMS offset (amps).
    pub fn with_offset(offset_sigma: f64) -> Self {
        Self { offset_sigma }
    }

    /// Resolves the differential pair: `true` when the positive branch
    /// carries more current.
    pub fn sense(&self, i_pos: f64, i_neg: f64, rng: &mut impl Rng) -> bool {
        let offset = if self.offset_sigma > 0.0 {
            gaussian(rng) * self.offset_sigma
        } else {
            0.0
        };
        i_pos + offset > i_neg
    }
}

impl Default for Pcsa {
    fn default() -> Self {
        Self::ideal()
    }
}

/// The digital popcount pipeline of CustBinaryMap: a 5-bit ripple counter
/// per column feeding a tree adder across columns/crossbars.
///
/// Functionally this is just a sum; the struct exists so the energy/latency
/// of the *digital* popcount (which TacitMap does not need) has an explicit
/// home and so tests can exercise the tree structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopcountTree {
    /// Counter width per leaf (the paper specifies five bits).
    pub counter_bits: u8,
}

impl PopcountTree {
    /// The paper's configuration: 5-bit local counters.
    pub fn paper_default() -> Self {
        Self { counter_bits: 5 }
    }

    /// Maximum value a single leaf counter can accumulate.
    pub fn counter_max(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }

    /// Reduces per-column XNOR bits to a popcount via a binary adder tree,
    /// returning `(popcount, tree_depth)`.
    ///
    /// The depth is `ceil(log2(n))` adder stages, which the timing model
    /// charges per reduction.
    pub fn reduce(&self, bits: &[bool]) -> (u32, u32) {
        let n = bits.len();
        let pop = bits.iter().filter(|&&b| b).count() as u32;
        let depth = if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        };
        (pop, depth)
    }
}

impl Default for PopcountTree {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn dac_binary_levels() {
        let d = Dac::binary(0.2);
        assert_eq!(d.convert(0), 0.0);
        assert!((d.convert(1) - 0.2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn dac_rejects_overflow_code() {
        let _ = Dac::binary(0.2).convert(2);
    }

    #[test]
    fn adc_recovers_exact_counts() {
        let adc = Adc::new(9, 1e-6);
        let mut r = rng();
        for count in [0u32, 1, 7, 200, 511] {
            let i = f64::from(count) * 1e-6;
            assert_eq!(adc.convert(i, &mut r), count);
        }
    }

    #[test]
    fn adc_tolerates_off_current_offset() {
        // 256 rows with on/off ratio 1000: worst-case off-current offset is
        // 0.256 LSB, which must still round to the right count.
        let adc = Adc::new(9, 1e-6);
        let mut r = rng();
        let i = 100.0 * 1e-6 + 156.0 * 1e-9; // 100 on-cells + 156 off-cells
        assert_eq!(adc.convert(i, &mut r), 100);
    }

    #[test]
    fn adc_clamps_to_range() {
        let adc = Adc::new(4, 1e-6);
        let mut r = rng();
        assert_eq!(adc.convert(100e-6, &mut r), 15);
        assert_eq!(adc.convert(-5e-6, &mut r), 0);
    }

    #[test]
    fn adc_noise_perturbs_counts() {
        let adc = Adc::new(9, 1e-6).with_noise(2.0);
        let mut r = rng();
        let counts: Vec<u32> = (0..200).map(|_| adc.convert(50e-6, &mut r)).collect();
        assert!(counts.iter().any(|&c| c != 50), "expected noisy misreads");
        let mean: f64 = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / 200.0;
        assert!((mean - 50.0).abs() < 2.0, "noise should be zero-mean");
    }

    #[test]
    fn pcsa_resolves_differential() {
        let p = Pcsa::ideal();
        let mut r = rng();
        assert!(p.sense(2e-6, 1e-6, &mut r));
        assert!(!p.sense(1e-6, 2e-6, &mut r));
    }

    #[test]
    fn pcsa_offset_can_flip_marginal_senses() {
        let p = Pcsa::with_offset(5e-6);
        let mut r = rng();
        let flips = (0..500)
            .filter(|_| !p.sense(1.05e-6, 1.0e-6, &mut r))
            .count();
        assert!(flips > 50, "expected marginal flips, got {flips}");
    }

    #[test]
    fn popcount_tree_counts_and_depth() {
        let t = PopcountTree::paper_default();
        assert_eq!(t.counter_max(), 31);
        let bits = vec![true, false, true, true, false, true, true, false];
        let (pop, depth) = t.reduce(&bits);
        assert_eq!(pop, 5);
        assert_eq!(depth, 3); // log2(8)
        assert_eq!(t.reduce(&[]).0, 0);
        assert_eq!(t.reduce(&[true]), (1, 0));
        assert_eq!(t.reduce(&[true; 9]).1, 4); // ceil(log2(9))
    }
}
