//! The crossbar array: a grid of programmed PCM devices with analog
//! current summation along columns (Kirchhoff accumulation).

use crate::device::{DeviceParams, EpcmDevice};
use crate::error::XbarError;
use crate::fault::{CellFault, FaultConfig};
use eb_bitnn::{BitMatrix, BitVec};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Cell structure of a crossbar.
///
/// The paper's Fig. 2/3 contrasts the conventional 1T1R structure used by
/// TacitMap with the 2T2R structure (device + complement device per cell)
/// required by CustBinaryMap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// One transistor + one resistive device per cell.
    OneT1R,
    /// Two transistors + two devices per cell (stores bit and complement).
    TwoT2R,
}

impl CellKind {
    /// Physical devices consumed per stored bit.
    pub fn devices_per_bit(&self) -> usize {
        match self {
            Self::OneT1R => 1,
            Self::TwoT2R => 2,
        }
    }
}

/// The immutable half of a [`CrossbarArray`]: everything fixed once the
/// weights are programmed — the device grid, device parameters, drift
/// ratio, population fault profile, and the memoised conductance
/// snapshot. Replicas of a prepared model share one core behind an
/// [`Arc`]; every mutation goes through [`Arc::make_mut`]
/// (copy-on-write), so an unshared array mutates in place while a shared
/// one detaches first and never disturbs its siblings.
#[derive(Debug, Clone)]
struct ProgrammedCore {
    rows: usize,
    cols: usize,
    params: DeviceParams,
    devices: Vec<Option<EpcmDevice>>,
    /// Read time as a multiple of the programming time `t₀`; amorphous
    /// cells resolve through [`EpcmDevice::after_drift`] at this ratio.
    /// `1.0` (the default) reads at programming time — no drift.
    t_ratio: f64,
    /// Population-level Bernoulli fault profile (see [`FaultConfig`]).
    fault: Option<FaultConfig>,
    /// Memoised [`CrossbarArray::conductance_snapshot`] *without* the
    /// per-replica kill-cell overlay. A `OnceLock` keeps the read side
    /// lock-free once initialised (replicas race only on the very first
    /// fill); core mutators replace the whole lock, which is how the
    /// memo is invalidated.
    snapshot: OnceLock<Arc<Vec<f64>>>,
}

/// A crossbar array of binary PCM devices.
///
/// Rows are word lines (inputs), columns are bit lines (outputs). The
/// array itself is mapping-agnostic: `eb-mapping` decides what bits land
/// where.
///
/// Internally the array is split into an `Arc`-shared programmed core
/// (devices, params, drift, population faults, snapshot memo) and a
/// small per-instance rind (write counter, [`CrossbarArray::kill_cell`]
/// overrides). [`Clone`] shares the core; copy-on-write keeps the
/// observable semantics identical to a deep copy while letting replica
/// pools hold one programmed grid regardless of replica count.
///
/// # Examples
///
/// ```
/// use eb_xbar::{CrossbarArray, DeviceParams};
/// use eb_bitnn::BitMatrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut xbar = CrossbarArray::new(4, 4, DeviceParams::ideal());
/// let bits = BitMatrix::from_fn(4, 4, |r, c| r == c);
/// xbar.program_matrix(&bits, &mut rng)?;
/// assert_eq!(xbar.stored_bit(2, 2), Some(true));
/// # Ok::<(), eb_xbar::XbarError>(())
/// ```
#[derive(Debug)]
pub struct CrossbarArray {
    core: Arc<ProgrammedCore>,
    writes: u64,
    /// Targeted per-cell fault overrides from [`CrossbarArray::kill_cell`];
    /// these win over the Bernoulli map and live in the per-replica rind
    /// so killing a cell never touches the shared core.
    killed: HashMap<(usize, usize), CellFault>,
    /// Memoised snapshot with the kill-cell overlay applied, used only
    /// while `killed` is non-empty (otherwise the core memo serves).
    /// Guarded by a `Mutex` rather than a `RefCell` so the array stays
    /// `Sync`; all invalidation happens through `&mut self`, where
    /// `Mutex::get_mut` is lock-free.
    overlay_cache: Mutex<Option<Arc<Vec<f64>>>>,
}

impl Clone for CrossbarArray {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            writes: self.writes,
            killed: self.killed.clone(),
            overlay_cache: Mutex::new(
                self.overlay_cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl CrossbarArray {
    /// Creates an unprogrammed array.
    pub fn new(rows: usize, cols: usize, params: DeviceParams) -> Self {
        Self {
            core: Arc::new(ProgrammedCore {
                rows,
                cols,
                params,
                devices: vec![None; rows * cols],
                t_ratio: 1.0,
                fault: None,
                snapshot: OnceLock::new(),
            }),
            writes: 0,
            killed: HashMap::new(),
            overlay_cache: Mutex::new(None),
        }
    }

    /// Mutable access to the programmed core: detaches from any sharing
    /// siblings first (copy-on-write) and drops both snapshot memos —
    /// every caller changes something a read can observe.
    fn core_mut(&mut self) -> &mut ProgrammedCore {
        *self
            .overlay_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
        let core = Arc::make_mut(&mut self.core);
        core.snapshot = OnceLock::new();
        core
    }

    /// Drops the memoised kill-cell overlay snapshot; `get_mut` needs no
    /// lock because `&mut self` proves exclusive access.
    fn invalidate_overlay(&mut self) {
        *self
            .overlay_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// `true` when `self` and `other` read from the same programmed core
    /// (`Arc` pointer equality) — the replica weight-sharing invariant.
    pub fn shares_core_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Approximate heap bytes of the shared programmed core (device grid
    /// plus the memoised snapshot). Counted once per core however many
    /// replicas share it — pair with [`CrossbarArray::shares_core_with`]
    /// or count it on one replica only.
    pub fn core_bytes(&self) -> usize {
        std::mem::size_of::<ProgrammedCore>()
            + self.core.devices.capacity() * std::mem::size_of::<Option<EpcmDevice>>()
            + self
                .core
                .snapshot
                .get()
                .map_or(0, |s| s.len() * std::mem::size_of::<f64>())
    }

    /// Approximate heap bytes of this instance's private rind (write
    /// counter, kill-cell overrides, overlay memo).
    pub fn rind_bytes(&self) -> usize {
        let overlay = self
            .overlay_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |s| s.len() * std::mem::size_of::<f64>());
        std::mem::size_of::<Self>()
            + self.killed.len() * std::mem::size_of::<((usize, usize), CellFault)>()
            + overlay
    }

    /// Sets the read time `t/t₀` at which every subsequent read (and
    /// conductance snapshot) resolves amorphous resistance drift. Values
    /// `≤ 1.0` read at programming time, i.e. no drift — see
    /// [`EpcmDevice::after_drift`]. Drift is deterministic, so this does
    /// not affect [`CrossbarArray::read_is_deterministic`].
    pub fn set_drift_t_ratio(&mut self, t_ratio: f64) {
        self.core_mut().t_ratio = t_ratio;
    }

    /// The read time `t/t₀` drift currently resolves at (1.0 = none).
    pub fn drift_t_ratio(&self) -> f64 {
        self.core.t_ratio
    }

    /// Installs (or clears) a population-level fault profile. The per-cell
    /// fault map is a pure function of the profile's seed and the cell
    /// coordinates (see [`FaultConfig::cell_fault`]); faulty cells are
    /// deterministic, so this does not affect
    /// [`CrossbarArray::read_is_deterministic`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidFault`] if the profile's rates are not
    /// a valid probability assignment; the previous profile is kept.
    pub fn set_fault_config(&mut self, fault: Option<FaultConfig>) -> Result<(), XbarError> {
        if let Some(f) = &fault {
            f.validate()?;
        }
        self.core_mut().fault = fault;
        Ok(())
    }

    /// The installed population fault profile, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.core.fault.as_ref()
    }

    /// Forces one cell into a fault state, overriding the Bernoulli map —
    /// the targeted-injection hook for tests and drills. The override
    /// lives in this instance's rind: siblings sharing the programmed
    /// core keep reading the healthy cell.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::OutOfBounds`] if the coordinates exceed the
    /// array.
    pub fn kill_cell(&mut self, r: usize, c: usize, fault: CellFault) -> Result<(), XbarError> {
        if r >= self.core.rows || c >= self.core.cols {
            return Err(XbarError::OutOfBounds {
                row: r,
                col: c,
                rows: self.core.rows,
                cols: self.core.cols,
            });
        }
        self.killed.insert((r, c), fault);
        self.invalidate_overlay();
        Ok(())
    }

    /// Clears every injected fault: the population profile and all
    /// [`CrossbarArray::kill_cell`] overrides — "swap in pristine
    /// spare devices".
    pub fn clear_faults(&mut self) {
        self.killed.clear();
        self.invalidate_overlay();
        if self.core.fault.is_some() {
            self.core_mut().fault = None;
        }
    }

    /// The fault state of cell `(r, c)`: a targeted
    /// [`CrossbarArray::kill_cell`] override if present, else the
    /// population profile's Bernoulli draw, else healthy (`None`).
    pub fn cell_fault(&self, r: usize, c: usize) -> Option<CellFault> {
        if let Some(&f) = self.killed.get(&(r, c)) {
            return Some(f);
        }
        self.core.fault.as_ref().and_then(|f| f.cell_fault(r, c))
    }

    /// Number of faulty cells in the array (telemetry for health probes).
    pub fn fault_count(&self) -> usize {
        if self.core.fault.is_none() && self.killed.is_empty() {
            return 0;
        }
        (0..self.core.rows)
            .flat_map(|r| (0..self.core.cols).map(move |c| (r, c)))
            .filter(|&(r, c)| self.cell_fault(r, c).is_some())
            .count()
    }

    /// The conductance a faulty cell pins itself to.
    fn fault_conductance(&self, fault: CellFault) -> f64 {
        match fault {
            CellFault::StuckAtOn => self.core.params.g_on,
            CellFault::StuckAtOff => self.core.params.g_off,
            CellFault::Dead => 0.0,
        }
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.core.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.core.cols
    }

    /// Device parameters in use.
    pub fn params(&self) -> &DeviceParams {
        &self.core.params
    }

    /// Total device writes performed (endurance accounting).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// The programmed device at `(r, c)`, if any — the exact stored bit
    /// and post-variability conductance, for state serialization.
    pub fn device(&self, r: usize, c: usize) -> Option<&EpcmDevice> {
        if r >= self.core.rows || c >= self.core.cols {
            return None;
        }
        self.core.devices[r * self.core.cols + c].as_ref()
    }

    /// Rebuilds an array from serialized state: per-cell device states
    /// (row-major, programming noise already resolved) plus the write
    /// counter. Drift ratio and fault profile reset to their defaults;
    /// re-apply them with [`CrossbarArray::set_drift_t_ratio`] /
    /// [`CrossbarArray::set_fault_config`]. No device is programmed and
    /// no RNG is drawn — restoring is not a re-program.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] when `devices` does not
    /// hold exactly `rows · cols` entries.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        params: DeviceParams,
        devices: Vec<Option<EpcmDevice>>,
        writes: u64,
    ) -> Result<Self, XbarError> {
        if devices.len() != rows * cols {
            return Err(XbarError::DimensionMismatch {
                what: "restored device grid",
                expected: rows * cols,
                got: devices.len(),
            });
        }
        Ok(Self {
            core: Arc::new(ProgrammedCore {
                rows,
                cols,
                params,
                devices,
                t_ratio: 1.0,
                fault: None,
                snapshot: OnceLock::new(),
            }),
            writes,
            killed: HashMap::new(),
            overlay_cache: Mutex::new(None),
        })
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.core.cols + c
    }

    /// Programs one device.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::OutOfBounds`] if the coordinates exceed the array.
    pub fn program(
        &mut self,
        r: usize,
        c: usize,
        bit: bool,
        rng: &mut impl Rng,
    ) -> Result<(), XbarError> {
        if r >= self.core.rows || c >= self.core.cols {
            return Err(XbarError::OutOfBounds {
                row: r,
                col: c,
                rows: self.core.rows,
                cols: self.core.cols,
            });
        }
        let i = self.idx(r, c);
        let core = self.core_mut();
        core.devices[i] = Some(EpcmDevice::program(bit, &core.params, rng));
        self.writes += 1;
        Ok(())
    }

    /// Programs a full bit matrix anchored at the origin.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::OutOfBounds`] if the matrix exceeds the array.
    pub fn program_matrix(
        &mut self,
        bits: &BitMatrix,
        rng: &mut impl Rng,
    ) -> Result<(), XbarError> {
        self.program_matrix_at(bits, 0, 0, rng)
    }

    /// Programs a bit matrix with its top-left corner at `(row0, col0)`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::OutOfBounds`] if the matrix exceeds the array.
    pub fn program_matrix_at(
        &mut self,
        bits: &BitMatrix,
        row0: usize,
        col0: usize,
        rng: &mut impl Rng,
    ) -> Result<(), XbarError> {
        if row0 + bits.rows() > self.core.rows || col0 + bits.cols() > self.core.cols {
            return Err(XbarError::OutOfBounds {
                row: row0 + bits.rows(),
                col: col0 + bits.cols(),
                rows: self.core.rows,
                cols: self.core.cols,
            });
        }
        for r in 0..bits.rows() {
            for c in 0..bits.cols() {
                self.program(row0 + r, col0 + c, bits.get(r, c) == Some(true), rng)?;
            }
        }
        Ok(())
    }

    /// The bit a device was programmed with (`None` if unprogrammed or out
    /// of range).
    pub fn stored_bit(&self, r: usize, c: usize) -> Option<bool> {
        if r >= self.core.rows || c >= self.core.cols {
            return None;
        }
        self.core.devices[self.idx(r, c)]
            .as_ref()
            .map(EpcmDevice::stored_bit)
    }

    /// One-device conductance read with drift (at the configured
    /// [`CrossbarArray::drift_t_ratio`]) and read noise; unprogrammed
    /// devices read as `g_off` (a pristine PCM device is highly resistive).
    ///
    /// Faulty cells ([`CrossbarArray::cell_fault`]) bypass the device
    /// entirely: a stuck cell reads its pinned conductance and a dead
    /// cell reads 0, with neither drift nor read noise — the defect, not
    /// the programmed state, fixes what the column sees.
    pub fn read_conductance(&self, r: usize, c: usize, rng: &mut impl Rng) -> f64 {
        if let Some(fault) = self.cell_fault(r, c) {
            return self.fault_conductance(fault);
        }
        match &self.core.devices[self.idx(r, c)] {
            Some(d) => d.read_at(self.core.t_ratio, &self.core.params, rng),
            None => self.core.params.g_off,
        }
    }

    /// Returns `true` when reads are deterministic (no read noise), i.e.
    /// when a conductance snapshot reproduces every future read exactly.
    pub fn read_is_deterministic(&self) -> bool {
        self.core.params.read_sigma <= 0.0
    }

    /// Core snapshot: programmed conductances with drift and the
    /// population fault overlay baked in, but *without* this instance's
    /// kill-cell overrides — the shareable part.
    fn core_snapshot(&self) -> Vec<f64> {
        let core = &*self.core;
        let mut snap: Vec<f64> = core
            .devices
            .iter()
            .map(|d| {
                d.as_ref().map_or(core.params.g_off, |d| {
                    d.after_drift(core.t_ratio, &core.params)
                })
            })
            .collect();
        if core.fault.as_ref().is_some_and(|f| !f.is_vacuous()) {
            for r in 0..core.rows {
                for c in 0..core.cols {
                    if let Some(fault) = core.fault.as_ref().and_then(|f| f.cell_fault(r, c)) {
                        snap[r * core.cols + c] = self.fault_conductance(fault);
                    }
                }
            }
        }
        snap
    }

    /// Row-major snapshot of the programmed conductances (`rows × cols`,
    /// unprogrammed cells at `g_off`).
    ///
    /// Programming variability, drift (at the configured
    /// [`CrossbarArray::drift_t_ratio`]) and cell faults are baked into
    /// the snapshot, so when [`CrossbarArray::read_is_deterministic`]
    /// holds, the snapshot equals what every read would return — the
    /// batch VMM path samples it once and reuses it for the whole batch
    /// instead of re-resolving each device per input vector.
    pub fn conductance_snapshot(&self) -> Vec<f64> {
        let mut snap = self.core_snapshot();
        for (&(r, c), &fault) in &self.killed {
            snap[r * self.core.cols + c] = self.fault_conductance(fault);
        }
        snap
    }

    /// Memoised [`CrossbarArray::conductance_snapshot`]. With no
    /// kill-cell overrides the memo lives in the shared core behind a
    /// `OnceLock`: the first reader (across all replicas) materialises it
    /// and every later call on every sharing replica is a lock-free `Arc`
    /// clone. With overrides present, a per-instance memo layers the
    /// overlay on top. Every mutation that can change a read — core
    /// mutation or kill-cell — drops the relevant memo, so the cached
    /// snapshot is always bit-identical to a fresh one.
    pub fn conductance_snapshot_cached(&self) -> Arc<Vec<f64>> {
        if self.killed.is_empty() {
            return Arc::clone(
                self.core
                    .snapshot
                    .get_or_init(|| Arc::new(self.core_snapshot())),
            );
        }
        let mut cache = self
            .overlay_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(snap) = cache.as_ref() {
            return Arc::clone(snap);
        }
        let snap = Arc::new(self.conductance_snapshot());
        *cache = Some(Arc::clone(&snap));
        snap
    }

    /// Analog column current for a binary row drive: rows with bit 1 get
    /// `v_read` volts, rows with bit 0 get 0 V. Returns amps.
    ///
    /// This is the Kirchhoff accumulation of the paper's Fig. 1: each
    /// active row contributes `V·G(r, c)` to column `c`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] if the drive length differs
    /// from the row count.
    pub fn column_current(
        &self,
        input: &BitVec,
        col: usize,
        v_read: f64,
        rng: &mut impl Rng,
    ) -> Result<f64, XbarError> {
        if input.len() != self.core.rows {
            return Err(XbarError::DimensionMismatch {
                what: "row drive",
                expected: self.core.rows,
                got: input.len(),
            });
        }
        let mut current = 0.0;
        for r in 0..self.core.rows {
            if input.get(r) == Some(true) {
                current += v_read * self.read_conductance(r, col, rng);
            }
        }
        Ok(current)
    }

    /// Column currents for all columns under one binary row drive.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::DimensionMismatch`] if the drive length differs
    /// from the row count.
    pub fn all_column_currents(
        &self,
        input: &BitVec,
        v_read: f64,
        rng: &mut impl Rng,
    ) -> Result<Vec<f64>, XbarError> {
        (0..self.core.cols)
            .map(|c| self.column_current(input, c, v_read, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn program_and_readback() {
        let mut r = rng();
        let mut x = CrossbarArray::new(3, 3, DeviceParams::ideal());
        let bits = BitMatrix::from_fn(3, 3, |a, b| (a + b) % 2 == 0);
        x.program_matrix(&bits, &mut r).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(x.stored_bit(a, b), bits.get(a, b));
            }
        }
        assert_eq!(x.write_count(), 9);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut r = rng();
        let mut x = CrossbarArray::new(2, 2, DeviceParams::ideal());
        assert!(matches!(
            x.program(2, 0, true, &mut r),
            Err(XbarError::OutOfBounds { .. })
        ));
        let big = BitMatrix::zeros(3, 2);
        assert!(x.program_matrix(&big, &mut r).is_err());
    }

    #[test]
    fn column_current_counts_on_cells() {
        let mut r = rng();
        let p = DeviceParams::ideal();
        let mut x = CrossbarArray::new(4, 2, p.clone());
        // Column 0: bits 1,1,0,0; column 1: all 1.
        let bits = BitMatrix::from_fn(4, 2, |row, col| col == 1 || row < 2);
        x.program_matrix(&bits, &mut r).unwrap();
        let drive = BitVec::ones(4);
        let i0 = x.column_current(&drive, 0, 0.2, &mut r).unwrap();
        let i1 = x.column_current(&drive, 1, 0.2, &mut r).unwrap();
        // Column 0: 2 on + 2 off cells.
        let expect0 = 0.2 * (2.0 * p.g_on + 2.0 * p.g_off);
        let expect1 = 0.2 * 4.0 * p.g_on;
        assert!((i0 - expect0).abs() < 1e-12);
        assert!((i1 - expect1).abs() < 1e-12);
    }

    #[test]
    fn partial_drive_selects_rows() {
        let mut r = rng();
        let p = DeviceParams::ideal();
        let mut x = CrossbarArray::new(4, 1, p.clone());
        x.program_matrix(&BitMatrix::from_fn(4, 1, |_, _| true), &mut r)
            .unwrap();
        let drive = BitVec::from_bools(&[true, false, true, false]);
        let i = x.column_current(&drive, 0, 1.0, &mut r).unwrap();
        assert!((i - 2.0 * p.g_on).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let x = CrossbarArray::new(4, 1, DeviceParams::ideal());
        let mut r = rng();
        assert!(matches!(
            x.column_current(&BitVec::zeros(3), 0, 1.0, &mut r),
            Err(XbarError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unprogrammed_reads_as_off() {
        let x = CrossbarArray::new(2, 2, DeviceParams::ideal());
        let mut r = rng();
        assert_eq!(x.stored_bit(0, 0), None);
        assert_eq!(
            x.read_conductance(0, 0, &mut r),
            DeviceParams::ideal().g_off
        );
    }

    #[test]
    fn drift_lowers_reset_reads_and_snapshot_agrees() {
        let mut r = rng();
        let p = DeviceParams {
            drift_nu: 0.3,
            ..DeviceParams::ideal()
        };
        let mut x = CrossbarArray::new(2, 1, p.clone());
        x.program_matrix(&BitMatrix::from_fn(2, 1, |row, _| row == 0), &mut r)
            .unwrap();
        let fresh = x.conductance_snapshot();
        x.set_drift_t_ratio(1e6);
        assert_eq!(x.drift_t_ratio(), 1e6);
        let drifted = x.conductance_snapshot();
        // SET (bit 1, row 0) is stable; RESET (bit 0, row 1) drifts down.
        assert_eq!(drifted[0], fresh[0]);
        assert!(drifted[1] < fresh[1]);
        // Reads resolve the same drifted conductances the snapshot reports.
        assert_eq!(x.read_conductance(0, 0, &mut r), drifted[0]);
        assert_eq!(x.read_conductance(1, 0, &mut r), drifted[1]);
        // Drift is deterministic — the snapshot fast path stays valid.
        assert!(x.read_is_deterministic());
    }

    #[test]
    fn cell_kind_device_counts() {
        assert_eq!(CellKind::OneT1R.devices_per_bit(), 1);
        assert_eq!(CellKind::TwoT2R.devices_per_bit(), 2);
    }

    #[test]
    fn killed_cells_pin_reads_and_snapshot_agrees() {
        let mut r = rng();
        let p = DeviceParams::ideal();
        let mut x = CrossbarArray::new(2, 2, p.clone());
        x.program_matrix(&BitMatrix::from_fn(2, 2, |_, _| true), &mut r)
            .unwrap();
        x.kill_cell(0, 0, CellFault::Dead).unwrap();
        x.kill_cell(0, 1, CellFault::StuckAtOff).unwrap();
        x.kill_cell(1, 0, CellFault::StuckAtOn).unwrap();
        assert_eq!(x.read_conductance(0, 0, &mut r), 0.0);
        assert_eq!(x.read_conductance(0, 1, &mut r), p.g_off);
        assert_eq!(x.read_conductance(1, 0, &mut r), p.g_on);
        assert_eq!(x.read_conductance(1, 1, &mut r), p.g_on);
        let snap = x.conductance_snapshot();
        assert_eq!(snap, vec![0.0, p.g_off, p.g_on, p.g_on]);
        assert_eq!(x.fault_count(), 3);
        // A dead cell contributes no current even when driven.
        let drive = BitVec::ones(2);
        let i0 = x.column_current(&drive, 0, 1.0, &mut r).unwrap();
        assert!((i0 - p.g_on).abs() < 1e-12, "dead cell must pass nothing");
        // Faults stay deterministic; the snapshot fast path remains valid.
        assert!(x.read_is_deterministic());
        x.clear_faults();
        assert_eq!(x.fault_count(), 0);
        assert_eq!(x.read_conductance(0, 0, &mut r), p.g_on);
    }

    #[test]
    fn kill_cell_bounds_checked() {
        let mut x = CrossbarArray::new(2, 2, DeviceParams::ideal());
        assert!(matches!(
            x.kill_cell(2, 0, CellFault::Dead),
            Err(XbarError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn fault_profile_overrides_programmed_and_unprogrammed_cells() {
        let mut r = rng();
        let p = DeviceParams::ideal();
        let mut x = CrossbarArray::new(8, 8, p.clone());
        x.program_matrix(&BitMatrix::from_fn(8, 8, |a, b| (a + b) % 2 == 0), &mut r)
            .unwrap();
        x.set_fault_config(Some(FaultConfig::stuck_at_on(1.0, 3)))
            .unwrap();
        assert_eq!(x.fault_count(), 64);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(x.read_conductance(a, b, &mut r), p.g_on);
            }
        }
        // Reprogramming does not move the fault map.
        x.program(0, 0, false, &mut r).unwrap();
        assert_eq!(x.read_conductance(0, 0, &mut r), p.g_on);
        // An invalid profile is rejected and the previous one kept.
        assert!(x
            .set_fault_config(Some(FaultConfig::dead_cells(2.0, 0)))
            .is_err());
        assert_eq!(x.fault_config(), Some(&FaultConfig::stuck_at_on(1.0, 3)));
    }

    #[test]
    fn snapshot_matches_reads_under_partial_faults() {
        let mut r = rng();
        let mut x = CrossbarArray::new(16, 16, DeviceParams::ideal());
        x.program_matrix(&BitMatrix::from_fn(16, 16, |a, b| a * b % 3 == 0), &mut r)
            .unwrap();
        x.set_fault_config(Some(FaultConfig {
            stuck_on: 0.1,
            stuck_off: 0.1,
            dead: 0.2,
            seed: 77,
        }))
        .unwrap();
        let n = x.fault_count();
        assert!(n > 0 && n < 256, "partial fault population, got {n}");
        let snap = x.conductance_snapshot();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(snap[a * 16 + b], x.read_conductance(a, b, &mut r));
            }
        }
    }

    #[test]
    fn clones_share_core_until_core_mutation() {
        let mut r = rng();
        let p = DeviceParams::ideal();
        let mut x = CrossbarArray::new(4, 4, p.clone());
        x.program_matrix(&BitMatrix::from_fn(4, 4, |a, b| a == b), &mut r)
            .unwrap();
        let mut y = x.clone();
        assert!(x.shares_core_with(&y));
        // The memoised snapshot is shared through the core: both sides
        // hand back the same allocation.
        let sx = x.conductance_snapshot_cached();
        let sy = y.conductance_snapshot_cached();
        assert!(Arc::ptr_eq(&sx, &sy));

        // kill_cell stays in the rind: the core remains shared and the
        // sibling's reads are untouched.
        y.kill_cell(0, 0, CellFault::Dead).unwrap();
        assert!(x.shares_core_with(&y));
        assert_eq!(y.read_conductance(0, 0, &mut r), 0.0);
        assert_eq!(x.read_conductance(0, 0, &mut r), p.g_on);
        assert_eq!(y.conductance_snapshot_cached()[0], 0.0);
        assert_eq!(x.conductance_snapshot_cached()[0], p.g_on);

        // A core mutation detaches the mutating side (copy-on-write) and
        // leaves the original untouched.
        y.set_drift_t_ratio(10.0);
        assert!(!x.shares_core_with(&y));
        assert_eq!(x.drift_t_ratio(), 1.0);
        assert_eq!(y.drift_t_ratio(), 10.0);

        // Reprogramming a shared clone detaches too.
        let mut z = x.clone();
        z.program(0, 0, false, &mut r).unwrap();
        assert!(!x.shares_core_with(&z));
        assert_eq!(x.stored_bit(0, 0), Some(true));
        assert_eq!(z.stored_bit(0, 0), Some(false));
    }

    #[test]
    fn core_and_rind_bytes_reflect_sharing() {
        let mut r = rng();
        let mut x = CrossbarArray::new(8, 8, DeviceParams::ideal());
        x.program_matrix(&BitMatrix::from_fn(8, 8, |_, _| true), &mut r)
            .unwrap();
        let y = x.clone();
        // The shared core dominates; the per-replica rind is small.
        assert_eq!(x.core_bytes(), y.core_bytes());
        assert!(x.core_bytes() > 64 * std::mem::size_of::<Option<EpcmDevice>>());
        assert!(x.rind_bytes() < x.core_bytes());
    }
}
