//! Property tests pinning the memoised conductance snapshot
//! ([`CrossbarArray::conductance_snapshot_cached`]) bit-exactly to the
//! uncached oracle ([`CrossbarArray::conductance_snapshot`]) across
//! arbitrary interleavings of reads and cache-invalidating mutations
//! (reprogramming, drift, fault injection/clearing).

use eb_bitnn::{BitMatrix, BitVec};
use eb_xbar::{CellFault, CrossbarArray, DeviceParams, FaultConfig, VmmEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One cache-invalidating (or cache-preserving) operation.
#[derive(Debug, Clone)]
enum Op {
    Program {
        r: usize,
        c: usize,
        bit: bool,
    },
    Kill {
        r: usize,
        c: usize,
        fault: CellFault,
    },
    ClearFaults,
    SetDrift {
        t_ratio_log10: u8,
    },
    SetFault {
        rate_milli: u16,
        seed: u64,
    },
    ReadSnapshot,
    CloneArray,
}

fn op_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..rows, 0..cols, any::<bool>()).prop_map(|(r, c, bit)| Op::Program { r, c, bit }),
        (
            0..rows,
            0..cols,
            prop_oneof![
                Just(CellFault::StuckAtOn),
                Just(CellFault::StuckAtOff),
                Just(CellFault::Dead),
            ]
        )
            .prop_map(|(r, c, fault)| Op::Kill { r, c, fault }),
        Just(Op::ClearFaults),
        (0u8..7).prop_map(|t_ratio_log10| Op::SetDrift { t_ratio_log10 }),
        (0u16..400, any::<u64>()).prop_map(|(rate_milli, seed)| Op::SetFault { rate_milli, seed }),
        Just(Op::ReadSnapshot),
        Just(Op::CloneArray),
    ]
}

fn apply(x: &mut CrossbarArray, op: &Op, rng: &mut StdRng) {
    match *op {
        Op::Program { r, c, bit } => x.program(r, c, bit, rng).unwrap(),
        Op::Kill { r, c, fault } => x.kill_cell(r, c, fault).unwrap(),
        Op::ClearFaults => x.clear_faults(),
        Op::SetDrift { t_ratio_log10 } => {
            x.set_drift_t_ratio(10f64.powi(i32::from(t_ratio_log10)));
        }
        Op::SetFault { rate_milli, seed } => {
            let rate = f64::from(rate_milli) / 1000.0;
            x.set_fault_config(Some(FaultConfig {
                stuck_on: rate / 2.0,
                stuck_off: rate / 4.0,
                dead: rate / 4.0,
                seed,
            }))
            .unwrap();
        }
        Op::ReadSnapshot => {
            // Populate the memo so later mutations must really invalidate.
            let _ = x.conductance_snapshot_cached();
        }
        Op::CloneArray => {
            // Clones carry the memo; the clone must agree with its oracle.
            let twin = x.clone();
            assert_eq!(
                *twin.conductance_snapshot_cached(),
                twin.conductance_snapshot()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any interleaving of mutations and cached reads, the cached
    /// snapshot is bit-identical to a freshly computed one, and (with a
    /// drift-enabled but noiseless device model) to per-cell reads.
    #[test]
    fn cached_snapshot_is_bit_exact(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(11, 11), 0..24),
    ) {
        let params = DeviceParams { drift_nu: 0.05, ..DeviceParams::ideal() };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = CrossbarArray::new(rows, cols, params);
        x.program_matrix(
            &BitMatrix::from_fn(rows, cols, |r, c| (r * 3 + c * 5 + seed as usize).is_multiple_of(2)),
            &mut rng,
        ).unwrap();
        for op in &ops {
            // Clamp generated coordinates into this array's bounds.
            let op = match *op {
                Op::Program { r, c, bit } => Op::Program { r: r % rows, c: c % cols, bit },
                Op::Kill { r, c, fault } => Op::Kill { r: r % rows, c: c % cols, fault },
                ref other => other.clone(),
            };
            apply(&mut x, &op, &mut rng);
            let cached = x.conductance_snapshot_cached();
            let fresh = x.conductance_snapshot();
            prop_assert_eq!(&*cached, &fresh, "cache diverged after {:?}", op);
            // The snapshot contract: bit-equal to every read when
            // reads are deterministic.
            prop_assert!(x.read_is_deterministic());
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(
                        fresh[r * cols + c],
                        x.read_conductance(r, c, &mut rng)
                    );
                }
            }
        }
    }

    /// The batched VMM fast path (which consumes the cached snapshot)
    /// stays bit-exact against single-input reads across fault
    /// injection and clearing.
    #[test]
    fn cached_batch_vmm_matches_singles(
        seed in any::<u64>(),
        rate_milli in 0u16..300,
        fault_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = CrossbarArray::new(24, 6, DeviceParams::ideal());
        x.program_matrix(
            &BitMatrix::from_fn(24, 6, |r, c| (r + 2 * c) % 3 != 0),
            &mut rng,
        ).unwrap();
        let rate = f64::from(rate_milli) / 1000.0;
        x.set_fault_config(Some(FaultConfig {
            stuck_on: rate / 3.0,
            stuck_off: rate / 3.0,
            dead: rate / 3.0,
            seed: fault_seed,
        })).unwrap();
        let engine = VmmEngine::with_defaults(x);
        let inputs: Vec<BitVec> = (0..5)
            .map(|k| BitVec::from_bools(
                &(0..24).map(|i| (i * (k + 2)) % 5 < 3).collect::<Vec<_>>(),
            ))
            .collect();
        // Two batched passes: the second one runs entirely off the memo.
        let first = engine.vmm_counts_batch(&inputs, &mut rng).unwrap();
        let second = engine.vmm_counts_batch(&inputs, &mut rng).unwrap();
        prop_assert_eq!(&first, &second);
        for (k, v) in inputs.iter().enumerate() {
            let single = engine.vmm_counts(v, &mut rng).unwrap();
            prop_assert_eq!(&first[k], &single, "input {}", k);
        }
    }
}
