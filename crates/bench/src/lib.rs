//! # eb-bench — experiment harness
//!
//! Binaries regenerating every figure of the paper's evaluation (run with
//! `cargo run -p eb-bench --release --bin <name>`):
//!
//! | Binary            | Paper artifact |
//! |-------------------|----------------|
//! | `fig7_latency`    | Fig. 7 — normalized latency over the 6 BNNs |
//! | `fig8_energy`     | Fig. 8 — normalized energy over the 6 BNNs |
//! | `fig3_steps`      | Fig. 3 — TacitMap vs CustBinaryMap step counts |
//! | `fig5_wdm`        | Fig. 5 — WDM time-steps on oPCM vs ePCM |
//! | `power_model`     | Eq. 2 / Eq. 3 — receiver and transmitter power |
//! | `dse_wdm`         | §VI-C — design-space exploration over K and array size (extension) |
//! | `multilevel_noise`| §II-C/§VI-C — binary vs multi-level oPCM robustness (extension) |
//!
//! Criterion benches (`cargo bench -p eb-bench`) measure the wall-clock
//! cost of the simulator itself on the same workloads.

// The log-bucketed histogram the tail-latency harness was built on now
// lives in eb-telemetry (the serving stack shares it); re-exported so
// loadgen and the benches keep compiling unchanged.
pub use eb_telemetry::LatencyHistogram;

use std::fmt::Display;

/// Prints a standard experiment banner.
pub fn banner(title: impl Display, paper_ref: impl Display) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("(paper reference: {paper_ref})");
    println!("{}", "=".repeat(78));
}

/// Formats a speedup factor the way the paper annotates its figures
/// (`~78x`).
pub fn paper_factor(x: f64) -> String {
    if x >= 10.0 {
        format!("~{x:.0}x")
    } else {
        format!("~{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_format_like_the_paper() {
        assert_eq!(paper_factor(78.2), "~78x");
        assert_eq!(paper_factor(1205.4), "~1205x");
        assert_eq!(paper_factor(1.56), "~1.6x");
    }
}
