//! Extension experiment: the area side of the paper's Section V-A
//! accounting ("power and area overheads introduced by extra components
//! of oPCM cores"). Prints the per-crossbar breakdown and whole-chip area
//! of the three designs.

use eb_bench::banner;
use eb_core::{chip_area_mm2, crossbar_area, AreaParams, Design};

fn main() {
    banner(
        "Area accounting — per-crossbar breakdown and whole-chip totals",
        "Section V-A (area overheads of the oPCM components)",
    );
    let p = AreaParams::default();
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>14} {:>12} {:>12}",
        "design",
        "array µm²",
        "converters µm²",
        "sense µm²",
        "photonics µm²",
        "xbar mm²",
        "chip mm²"
    );
    for design in [
        Design::baseline_epcm(),
        Design::tacitmap_epcm(),
        Design::einstein_barrier(),
    ] {
        let b = crossbar_area(&design, &p);
        println!(
            "{:<18} {:>12.0} {:>14.0} {:>12.0} {:>14.0} {:>12.3} {:>12.1}",
            design.kind.to_string(),
            b.array_um2,
            b.converters_um2,
            b.sense_um2,
            b.photonics_um2,
            b.total_mm2(),
            chip_area_mm2(&design, &p)
        );
    }
    println!();
    println!("Observations (mirroring the paper's qualitative claims):");
    let base = crossbar_area(&Design::baseline_epcm(), &p).total_um2();
    let tm = crossbar_area(&Design::tacitmap_epcm(), &p).total_um2();
    let eb = crossbar_area(&Design::einstein_barrier(), &p).total_um2();
    println!(
        "  TacitMap-ePCM trades the baseline's PCSA+popcount logic for ADCs: {:.2}× baseline area",
        tm / base
    );
    println!(
        "  EinsteinBarrier pays photonic pitch + transmitter + receivers: {:.1}× baseline area \
         — the area cost of WDM parallelism",
        eb / base
    );
}
