//! Regenerates the paper's Fig. 5: the WDM concept. Three activation
//! vectors against three flattened kernels take T1+T2+T3 (three
//! time-steps) on an ePCM crossbar but a single time-step T1 on an
//! oPCM crossbar, where the transmitter combines the vectors onto
//! distinct wavelengths (an MMM of size 4 × 4 × 3).

use eb_bench::banner;
use eb_bitnn::{ops, BitMatrix, BitVec};
use eb_core::OpticalTacitMapped;
use eb_mapping::TacitMapped;
use eb_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig. 5 — WDM turns K sequential VMMs into one MMM time-step",
        "Section IV-A2, Fig. 5",
    );
    let mut rng = StdRng::seed_from_u64(7);

    // The figure's setup: 2-bit kernels (3 of them) and 3 activation
    // vectors (X1, X2 of the yellow/red/blue vectors).
    let kernels = BitMatrix::from_rows(&[
        BitVec::from_bools(&[true, false]),
        BitVec::from_bools(&[true, true]),
        BitVec::from_bools(&[false, true]),
    ]);
    let activations = [
        BitVec::from_bools(&[true, true]),
        BitVec::from_bools(&[false, true]),
        BitVec::from_bools(&[true, false]),
    ];

    // (a) TacitMap on ePCM: three consecutive time-steps.
    let mut epcm = TacitMapped::program(&kernels, &XbarConfig::new(4, 3), &mut rng)
        .expect("kernels fit one 4×3 crossbar");
    for (t, x) in activations.iter().enumerate() {
        let counts = epcm.execute(x, &mut rng).expect("execute");
        println!(
            "  ePCM time-step T{}: input {} -> popcounts {:?}",
            t + 1,
            x,
            counts
        );
    }
    println!("  ePCM total: {} time-steps", epcm.steps_taken());
    println!();

    // (b) TacitMap on oPCM with WDM: one time-step.
    let mut opcm = OpticalTacitMapped::program(&kernels, 4, 3, 16, &mut rng).expect("kernels fit");
    let counts = opcm
        .execute_wdm(&activations, &mut rng)
        .expect("one WDM step");
    for (k, (x, c)) in activations.iter().zip(&counts).enumerate() {
        println!("  oPCM T1, wavelength λ{k}: input {x} -> popcounts {c:?}");
    }
    println!("  oPCM total: {} time-step(s)", opcm.steps_taken());

    // Verify both against the software reference.
    for (k, x) in activations.iter().enumerate() {
        assert_eq!(counts[k], ops::binary_linear_popcounts(x, &kernels));
    }
    println!();
    println!(
        "  Both paths bit-exact; WDM capacity K=16 executed {} vectors in 1 step \
         (effective MMM of size 4×4×3, as in the paper).",
        activations.len()
    );
}
