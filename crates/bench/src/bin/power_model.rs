//! Evaluates the paper's power model verbatim: Eq. 2 (crossbar receiver
//! power, `N × 2 mW` of TIAs) and Eq. 3 (transmitter power: laser +
//! modulators + tuning) across WDM capacities and array sizes, plus the
//! duty-cycled per-step energy used by the energy model (DESIGN.md).

use eb_bench::banner;
use eb_photonics::power::{crossbar_receiver_power_mw, TransmitterPowerModel};
use eb_photonics::OpticalCost;

fn main() {
    banner(
        "Eq. 2 / Eq. 3 — oPCM receiver and transmitter power",
        "Section IV-B",
    );
    println!("Eq. 2: P_crossbar = N × 2 mW");
    for n in [64usize, 128, 256, 512] {
        println!(
            "  N = {n:>4} columns: {:>8.1} mW",
            crossbar_receiver_power_mw(n)
        );
    }
    println!();
    let model = TransmitterPowerModel::paper_default();
    println!("Eq. 3: P_total = P_laser + 3·K·M mW + 3·(K·M+1)/K · 45 mW  (P_laser = 10 mW)");
    println!(
        "{:>4} {:>6} {:>14} {:>14} {:>14}",
        "K", "M", "modulators mW", "tuning mW", "total mW"
    );
    for k in [1usize, 4, 8, 16] {
        for m in [128usize, 256] {
            println!(
                "{:>4} {:>6} {:>14.0} {:>14.0} {:>14.0}",
                k,
                m,
                model.modulators_mw(k, m),
                model.tuning_mw(k, m),
                model.total_mw(k, m)
            );
        }
    }
    println!();
    let cost = OpticalCost::default();
    println!(
        "Duty-cycled step energy (symbol time {} ns), K=16, 256×256 crossbar: {:.2} nJ",
        cost.timings.t_symbol_ns,
        cost.step_energy_j(16, 256, 256) * 1e9
    );
    println!(
        "For reference, the electronic TacitMap step converts 256 columns at 2 pJ: {:.2} nJ",
        256.0 * 2.0e-12 * 1e9
    );
}
