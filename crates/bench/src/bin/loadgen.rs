//! `loadgen` — open-loop HTTP load generator for the eb-serve frontend.
//!
//! Open-loop means arrivals follow a fixed schedule derived from the
//! target QPS, *independent of response latency* — a slow server does
//! not slow the generator down, so overload actually overloads (a
//! closed loop would self-throttle and hide the very tail this harness
//! exists to measure). Latency is measured from each request's
//! *intended* arrival instant, which also charges coordinated omission
//! to the server.
//!
//! ```text
//! cargo run --release -p eb-bench --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --model demo --qps 200 --duration-s 10 --json
//! ```

use eb_bench::LatencyHistogram;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    model: String,
    qps: f64,
    duration_s: f64,
    input: usize,
    deadline_ms: Option<u64>,
    priority: Option<String>,
    poisson: bool,
    seed: u64,
    wait_ready_s: f64,
    timeout_ms: u64,
    json: bool,
    min_ok: u64,
    min_shed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_owned(),
            model: "demo".to_owned(),
            qps: 50.0,
            duration_s: 5.0,
            input: 16,
            deadline_ms: None,
            priority: None,
            poisson: false,
            seed: 1,
            wait_ready_s: 10.0,
            timeout_ms: 10_000,
            json: false,
            min_ok: 0,
            min_shed: 0,
        }
    }
}

const USAGE: &str = "\
loadgen — open-loop load generator for eb-serve

USAGE: loadgen [OPTIONS]

  --addr HOST:PORT     target (default 127.0.0.1:8080)
  --model NAME         model to predict against (default demo)
  --qps F              offered load, requests/second (default 50)
  --duration-s F       generation window in seconds (default 5)
  --input N            input vector width (default 16)
  --deadline-ms N      send x-eb-deadline-ms header
  --priority P         send x-eb-priority header (high|normal|low)
  --poisson            exponential inter-arrivals instead of uniform
  --seed N             arrival/input RNG seed (default 1)
  --wait-ready-s F     poll /healthz this long before starting (default 10)
  --timeout-ms N       per-request connect/read/write timeout (default 10000)
  --json               emit the summary as one JSON object on stdout
  --min-ok N           exit 3 unless at least N requests got 200
  --min-shed N         exit 3 unless at least N requests were shed (503)
  --help               this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => args.addr = value("--addr")?,
            "--model" => args.model = value("--model")?,
            "--qps" => args.qps = parse_num(&value("--qps")?, "--qps")?,
            "--duration-s" => args.duration_s = parse_num(&value("--duration-s")?, "--duration-s")?,
            "--input" => args.input = parse_num(&value("--input")?, "--input")?,
            "--deadline-ms" => {
                args.deadline_ms = Some(parse_num(&value("--deadline-ms")?, "--deadline-ms")?);
            }
            "--priority" => args.priority = Some(value("--priority")?),
            "--poisson" => args.poisson = true,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--wait-ready-s" => {
                args.wait_ready_s = parse_num(&value("--wait-ready-s")?, "--wait-ready-s")?;
            }
            "--timeout-ms" => args.timeout_ms = parse_num(&value("--timeout-ms")?, "--timeout-ms")?,
            "--json" => args.json = true,
            "--min-ok" => args.min_ok = parse_num(&value("--min-ok")?, "--min-ok")?,
            "--min-shed" => args.min_shed = parse_num(&value("--min-shed")?, "--min-shed")?,
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.qps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || args.duration_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err("--qps and --duration-s must be positive".to_owned());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("unparseable value {s:?} for {flag}"))
}

/// One request's fate, as classified from the response status line.
enum Outcome {
    /// 200 — served; payload is latency from intended arrival, in µs.
    Ok(u64),
    /// 503 — shed; payload is time-to-rejection in µs (the "fail fast"
    /// bound).
    Shed(u64),
    /// 504 — ticket deadline expired server-side.
    Deadline,
    /// Anything else: other statuses, connect failures, timeouts.
    Error,
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr:?} resolved to nothing"))
}

/// One full HTTP exchange (Connection: close); returns the status code.
fn http_once(addr: SocketAddr, timeout: Duration, request: &[u8]) -> Result<u16, std::io::Error> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    stream.write_all(request)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let line = response.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let status = std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok());
    status.ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))
}

fn build_request(args: &Args, seed: u64) -> Vec<u8> {
    // Deterministic pseudo-random input in [-1, 1).
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let body = (0..args.input)
        .map(|_| format!("{:.4}", next()))
        .collect::<Vec<_>>()
        .join(" ");
    let mut head = format!(
        "POST /v1/models/{}:predict HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n",
        args.model,
        body.len()
    );
    if let Some(ms) = args.deadline_ms {
        head.push_str(&format!("x-eb-deadline-ms: {ms}\r\n"));
    }
    if let Some(p) = &args.priority {
        head.push_str(&format!("x-eb-priority: {p}\r\n"));
    }
    head.push_str("connection: close\r\n\r\n");
    let mut request = head.into_bytes();
    request.extend_from_slice(body.as_bytes());
    request
}

fn wait_ready(addr: SocketAddr, window: Duration) -> bool {
    let request = b"GET /healthz HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n";
    let start = Instant::now();
    while start.elapsed() < window {
        if let Ok(200) = http_once(addr, Duration::from_millis(500), request) {
            return true;
        }
        thread::sleep(Duration::from_millis(100));
    }
    false
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let addr = resolve(&args.addr)?;
    if args.wait_ready_s > 0.0 && !wait_ready(addr, Duration::from_secs_f64(args.wait_ready_s)) {
        return Err(format!(
            "server at {addr} not ready within {}s",
            args.wait_ready_s
        ));
    }

    // Arrival schedule, fixed up front: uniform spacing or exponential
    // (Poisson process) inter-arrivals at the same mean rate.
    let n = (args.qps * args.duration_s).round().max(1.0) as usize;
    let mut offsets = Vec::with_capacity(n);
    let mut t = 0.0f64;
    let mut state = args
        .seed
        .wrapping_mul(0x2545f4914f6cdd1d)
        .wrapping_add(0xb5);
    for _ in 0..n {
        if args.poisson {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            t += -u.ln() / args.qps;
        } else {
            t += 1.0 / args.qps;
        }
        offsets.push(Duration::from_secs_f64(t));
    }

    let timeout = Duration::from_millis(args.timeout_ms);
    let (tx, rx) = mpsc::channel::<Outcome>();
    let start = Instant::now();
    let mut spawned = Vec::with_capacity(n);
    for (i, offset) in offsets.into_iter().enumerate() {
        let now = start.elapsed();
        if offset > now {
            thread::sleep(offset - now);
        }
        // Open loop: the request runs on its own thread; this scheduler
        // immediately returns to pacing the next arrival.
        let tx = tx.clone();
        let request = build_request(args, args.seed.wrapping_add(i as u64));
        let intended = start + offset;
        spawned.push(thread::spawn(move || {
            let outcome = match http_once(addr, timeout, &request) {
                Ok(200) => Outcome::Ok(intended.elapsed().as_micros() as u64),
                Ok(503) => Outcome::Shed(intended.elapsed().as_micros() as u64),
                Ok(504) => Outcome::Deadline,
                Ok(_) | Err(_) => Outcome::Error,
            };
            let _ = tx.send(outcome);
        }));
    }
    drop(tx);

    let mut ok_hist = LatencyHistogram::new();
    let mut shed_hist = LatencyHistogram::new();
    let (mut deadline, mut errors) = (0u64, 0u64);
    for outcome in rx {
        match outcome {
            Outcome::Ok(us) => ok_hist.record(us),
            Outcome::Shed(us) => shed_hist.record(us),
            Outcome::Deadline => deadline += 1,
            Outcome::Error => errors += 1,
        }
    }
    for handle in spawned {
        let _ = handle.join();
    }
    let wall = start.elapsed().as_secs_f64();

    let sent = n as u64;
    let ok = ok_hist.count();
    let shed = shed_hist.count();
    let shed_rate = shed as f64 / sent as f64;
    if args.json {
        println!(
            concat!(
                r#"{{"addr":"{}","model":"{}","offered_qps":{},"sent":{},"wall_s":{:.3},"#,
                r#""ok":{},"shed":{},"deadline":{},"errors":{},"served_qps":{:.1},"#,
                r#""shed_rate":{:.4},"latency_us":{{"p50":{},"p90":{},"p99":{},"p999":{},"#,
                r#""mean":{:.0},"max":{}}},"shed_us":{{"p50":{},"p99":{}}}}}"#
            ),
            args.addr,
            args.model,
            args.qps,
            sent,
            wall,
            ok,
            shed,
            deadline,
            errors,
            ok as f64 / wall,
            shed_rate,
            ok_hist.quantile(0.50),
            ok_hist.quantile(0.90),
            ok_hist.quantile(0.99),
            ok_hist.quantile(0.999),
            ok_hist.mean(),
            ok_hist.max(),
            shed_hist.quantile(0.50),
            shed_hist.quantile(0.99),
        );
    } else {
        println!(
            "loadgen: offered {:.0} qps for {:.1}s → sent={} ok={} shed={} ({:.1}%) \
             deadline={} errors={}",
            args.qps,
            wall,
            sent,
            ok,
            shed,
            shed_rate * 100.0,
            deadline,
            errors,
        );
        println!(
            "loadgen: served latency µs: p50={} p90={} p99={} p999={} mean={:.0} max={}",
            ok_hist.quantile(0.50),
            ok_hist.quantile(0.90),
            ok_hist.quantile(0.99),
            ok_hist.quantile(0.999),
            ok_hist.mean(),
            ok_hist.max(),
        );
        if shed > 0 {
            println!(
                "loadgen: time-to-shed µs: p50={} p99={} (fail-fast bound)",
                shed_hist.quantile(0.50),
                shed_hist.quantile(0.99),
            );
        }
    }

    if ok < args.min_ok {
        eprintln!("loadgen: FAIL ok={} < --min-ok {}", ok, args.min_ok);
        return Ok(ExitCode::from(3));
    }
    if shed < args.min_shed {
        eprintln!("loadgen: FAIL shed={} < --min-shed {}", shed, args.min_shed);
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("loadgen: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("loadgen: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
