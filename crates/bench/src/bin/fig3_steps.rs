//! Regenerates the concept of the paper's Fig. 3: at the crossbar level,
//! TacitMap performs `n` XNOR+Popcounts in **one** VMM step while
//! CustBinaryMap takes at least `n` sequential PCSA steps — "theoretically
//! up to n× lower execution time" (Section III).
//!
//! Swept over weight-matrix shapes, both with the pure step planner and
//! with the *functional* mappers executing on the simulated analog
//! crossbars (verifying the counts agree with the software reference).

use eb_bench::banner;
use eb_bitnn::{ops, BitMatrix, BitVec};
use eb_mapping::{plan_custbinary, plan_tacitmap, CustBinaryMapped, TacitMapped, Workload};
use eb_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig. 3 — TacitMap vs CustBinaryMap crossbar step counts",
        "Section III, Fig. 3",
    );
    let xbar = XbarConfig::new(256, 256);
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "workload (m×n)", "CustBinary", "TacitMap", "ratio"
    );
    for (m, n) in [
        (64usize, 64usize),
        (128, 128),
        (128, 256),
        (256, 256),
        (784, 500),
        (2000, 1500),
    ] {
        let w = Workload::binary(m, n, 1);
        let cust = plan_custbinary(&w, &xbar, 1);
        let tacit = plan_tacitmap(&w, &xbar, 1);
        println!(
            "{:<22} {:>14} {:>14} {:>9.0}x",
            format!("{m}×{n}"),
            cust.steps,
            tacit.steps,
            cust.steps as f64 / tacit.steps as f64
        );
    }

    println!();
    println!("Functional check (simulated analog crossbars, 64×64 arrays):");
    let mut rng = StdRng::seed_from_u64(42);
    let weights = BitMatrix::from_fn(48, 96, |r, c| (r * 31 + c * 7) % 5 < 2);
    let cfg = XbarConfig::new(64, 64);
    let mut tacit = TacitMapped::program(&weights, &cfg, &mut rng).expect("mapping fits");
    let mut cust = CustBinaryMapped::program(&weights, &cfg, &mut rng).expect("mapping fits");
    let input = BitVec::from_bools(&(0..96).map(|i| i % 3 != 1).collect::<Vec<_>>());
    let want = ops::binary_linear_popcounts(&input, &weights);
    let t = tacit.execute(&input, &mut rng).expect("execute");
    let c = cust.execute(&input, &mut rng).expect("execute");
    assert_eq!(t, want, "TacitMap functional mismatch");
    assert_eq!(c, want, "CustBinaryMap functional mismatch");
    println!(
        "  48 weight vectors of 96 bits: TacitMap {} step(s), CustBinaryMap {} steps — \
         both bit-exact vs the software reference",
        tacit.steps_taken(),
        cust.steps_taken()
    );
}
