//! Regenerates the paper's Fig. 7: normalized latency improvements of
//! TacitMap-ePCM and EinsteinBarrier over Baseline-ePCM across the six
//! benchmark BNNs, with the Baseline-GPU reference.
//!
//! Paper headline numbers: TacitMap-ePCM ~78× average (up to ~154×),
//! EinsteinBarrier ~1205× average (~22×–~3113×), EinsteinBarrier over
//! TacitMap-ePCM ~15×; Baseline-ePCM ~4× faster than the GPU on the
//! first CNN but ~27× slower on MLP-L.

use eb_bench::{banner, paper_factor};
use eb_core::report::{run_fig7, DEFAULT_BATCH};

fn main() {
    banner(
        "Fig. 7 — Normalized latency improvement over Baseline-ePCM",
        "Section VI-A, Fig. 7",
    );
    let fig = run_fig7(DEFAULT_BATCH);
    print!("{}", fig.to_table());
    println!();
    println!("Paper vs reproduction:");
    println!(
        "  TacitMap-ePCM average:   paper ~78x   | measured {}",
        paper_factor(fig.mean_tacitmap_speedup())
    );
    println!(
        "  EinsteinBarrier average: paper ~1205x | measured {}",
        paper_factor(fig.mean_einstein_speedup())
    );
    println!(
        "  EinsteinBarrier/TacitMap: paper ~15x  | measured {}",
        paper_factor(fig.mean_eb_over_tm())
    );
    let max_tm = fig
        .rows
        .iter()
        .map(|r| r.tacitmap_speedup)
        .fold(0.0f64, f64::max);
    let (max_eb, min_eb) = fig
        .rows
        .iter()
        .fold((0.0f64, f64::INFINITY), |(mx, mn), r| {
            (mx.max(r.einstein_speedup), mn.min(r.einstein_speedup))
        });
    println!(
        "  TacitMap-ePCM max:        paper ~154x | measured {}",
        paper_factor(max_tm)
    );
    println!(
        "  EinsteinBarrier range:    paper ~22x–~3113x | measured {}–{}",
        paper_factor(min_eb),
        paper_factor(max_eb)
    );
    let gpu_cnn = fig.rows[0].gpu_speedup;
    let gpu_mlpl = fig.rows[5].gpu_speedup;
    println!(
        "  GPU on first CNN: paper baseline ~4x faster | measured baseline {} faster",
        paper_factor(1.0 / gpu_cnn)
    );
    println!(
        "  GPU on MLP-L:     paper baseline ~27x slower | measured baseline {} slower",
        paper_factor(gpu_mlpl)
    );
}
