//! Extension experiment (the paper's Section VI-C future work): a design
//! space exploration of EinsteinBarrier over WDM capacity `K` and
//! crossbar array size, reporting the achieved speedup over
//! TacitMap-ePCM per network.
//!
//! The paper observes the achieved gain stays below the WDM capacity
//! (avg ~15× at K = 16) and expects larger networks to close the gap —
//! this sweep quantifies exactly that.

use eb_bench::banner;
use eb_bitnn::BenchModel;
use eb_core::perf::evaluate_model;
use eb_core::report::DEFAULT_BATCH;
use eb_core::Design;

fn main() {
    banner(
        "DSE — EinsteinBarrier gain vs WDM capacity and array size",
        "Section VI-C (future work, reproduced as an extension)",
    );
    let batch = DEFAULT_BATCH;
    println!("Gain of EinsteinBarrier over TacitMap-ePCM (latency), batch {batch}:");
    print!("{:<8}", "K");
    for model in BenchModel::all() {
        print!("{:>10}", model.name());
    }
    println!();
    let tm = Design::tacitmap_epcm();
    for k in [1usize, 2, 4, 8, 16, 32] {
        let eb = Design::einstein_barrier_with_capacity(k);
        print!("{k:<8}");
        for model in BenchModel::all() {
            let t = evaluate_model(&tm, model, batch).total_latency_ns();
            let e = evaluate_model(&eb, model, batch).total_latency_ns();
            print!("{:>9.1}x", t / e);
        }
        println!();
    }

    println!();
    println!("EinsteinBarrier speedup over Baseline-ePCM vs array size (K = 16):");
    print!("{:<10}", "array");
    for model in BenchModel::all() {
        print!("{:>10}", model.name());
    }
    println!();
    for size in [128usize, 256, 512] {
        let base = Design::baseline_epcm().with_array_size(size, size);
        let eb = Design::einstein_barrier().with_array_size(size, size);
        print!("{:<10}", format!("{size}×{size}"));
        for model in BenchModel::all() {
            let b = evaluate_model(&base, model, batch).total_latency_ns();
            let e = evaluate_model(&eb, model, batch).total_latency_ns();
            print!("{:>9.0}x", b / e);
        }
        println!();
    }
}
