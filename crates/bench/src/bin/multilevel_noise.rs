//! Extension experiment reproducing the paper's Section II-C robustness
//! argument (via Cardoso et al., DATE'23): with realistic programming
//! noise, *multi-level* oPCM devices confuse adjacent levels while
//! *binary* devices stay separable — the reason TacitMap/EinsteinBarrier
//! operate PCM in binary mode.
//!
//! For each level count we program devices to every level, read them
//! back through a noisy chain, and report the level-recovery error rate.

use eb_bench::banner;
use eb_photonics::{OpcmDevice, OpcmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Binary vs multi-level oPCM robustness under programming noise",
        "Section II-C / Section VI-C (Cardoso et al. DATE'23 argument)",
    );
    let mut rng = StdRng::seed_from_u64(1234);
    let trials = 4000usize;
    println!(
        "{:>8} {:>12} {:>18} {:>16}",
        "levels", "σ(write)", "level error rate", "separable?"
    );
    for &levels in &[2usize, 4, 8, 16] {
        for &sigma in &[0.01f64, 0.03, 0.05] {
            let params = OpcmParams::with_levels(levels, sigma);
            let mut errors = 0usize;
            for t in 0..trials {
                let level = t % levels;
                let dev = OpcmDevice::program_level(level, &params, &mut rng)
                    .expect("level within range");
                // Nearest-level decode of the read transmission.
                let decoded = (0..levels)
                    .min_by(|&a, &b| {
                        let da = (dev.transmission() - params.level_transmission(a)).abs();
                        let db = (dev.transmission() - params.level_transmission(b)).abs();
                        da.partial_cmp(&db).expect("finite")
                    })
                    .expect("at least one level");
                if decoded != level {
                    errors += 1;
                }
            }
            let rate = errors as f64 / trials as f64;
            println!(
                "{levels:>8} {sigma:>12.2} {:>17.2}% {:>16}",
                rate * 100.0,
                if rate < 1e-3 { "yes" } else { "no" }
            );
        }
    }
    println!();
    println!(
        "Binary devices (2 levels) decode without error at every noise level, while\n\
         8/16-level devices confuse adjacent states — matching the paper's rationale\n\
         for binary PCM operation in TacitMap and EinsteinBarrier."
    );
}
