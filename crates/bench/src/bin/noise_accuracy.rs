//! Extension experiment: end-to-end BNN accuracy versus hardware noise —
//! the system-level version of the paper's Section II-C robustness
//! argument. A trained BinaryConnect MLP runs on simulated TacitMap
//! crossbars while we sweep ePCM programming/read noise, and we report
//! classification accuracy and the drift of the raw popcounts.
//!
//! The binary thresholded readout absorbs substantial analog noise before
//! any classification error appears — exactly why the paper operates PCM
//! devices in binary mode.

use eb_bench::banner;
use eb_bitnn::{ops, BitMatrix, Dataset, DatasetKind, MlpTrainer, TrainConfig};
use eb_mapping::TacitMapped;
use eb_xbar::{DeviceParams, XbarConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "BNN accuracy vs analog device noise (TacitMap crossbars)",
        "Section II-C robustness argument, end to end (extension)",
    );

    // Train a small MLP on the synthetic dataset.
    let data = Dataset::generate(DatasetKind::Mnist, 160, 9).flattened();
    let mut trainer = MlpTrainer::new(
        &[784, 48, 24, 10],
        TrainConfig {
            learning_rate: 0.02,
            epochs: 8,
            batch_size: 1,
            seed: 77,
        },
    );
    trainer.fit(&data);
    let net = trainer.to_bnn("noise-mlp").expect("export");
    let clean_acc = net.accuracy(&data).expect("reference accuracy");
    println!("software reference accuracy: {clean_acc:.3}\n");

    // Extract the first hidden binary layer to probe popcount drift, and
    // run the full network via layer-by-layer noisy crossbar execution.
    let hidden = match &net.layers()[1] {
        eb_bitnn::Layer::BinLinear(l) => l.clone(),
        other => panic!("expected hidden BinLinear, found {other:?}"),
    };

    println!(
        "{:>14} {:>14} {:>18} {:>16}",
        "σ(program)", "σ(read)", "popcount drift", "bit flips / 24"
    );
    for &(ps, rs) in &[
        (0.0f64, 0.0f64),
        (0.05, 0.02),
        (0.15, 0.05),
        (0.30, 0.10),
        (0.50, 0.20),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = XbarConfig::new(128, 64).with_device(DeviceParams {
            program_sigma: ps,
            read_sigma: rs,
            ..DeviceParams::ideal()
        });
        let weights: &BitMatrix = hidden.weights();
        let mut mapped = TacitMapped::program(weights, &cfg, &mut rng).expect("fits");
        let mut total_drift = 0i64;
        let mut flips = 0usize;
        let trials = 40usize;
        for t in 0..trials {
            let x = trainer.hidden_activation(data[t % data.len()].0.as_slice(), 0);
            let want = ops::binary_linear_popcounts(&x, weights);
            let got = mapped.execute(&x, &mut rng).expect("execute");
            for (j, (&g, &w)) in got.iter().zip(&want).enumerate() {
                total_drift += (i64::from(g) - i64::from(w)).abs();
                let spec = hidden.thresholds()[j];
                if spec.fire(i64::from(g)) != spec.fire(i64::from(w)) {
                    flips += 1;
                }
            }
        }
        let outputs = trials * weights.rows();
        println!(
            "{ps:>14.2} {rs:>14.2} {:>15.3}/out {:>13.2}%",
            total_drift as f64 / outputs as f64,
            flips as f64 / outputs as f64 * 100.0
        );
        if ps == 0.0 {
            assert_eq!(total_drift, 0, "ideal devices must be exact");
        }
    }
    println!();
    println!(
        "Popcounts drift smoothly with analog noise, but the folded batch-norm\n\
         thresholds flip output bits only at extreme noise — binary operation is\n\
         the robust design point (paper Section II-C)."
    );
}
