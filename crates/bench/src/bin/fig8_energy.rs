//! Regenerates the paper's Fig. 8: energy consumption of TacitMap-ePCM
//! and EinsteinBarrier normalized to Baseline-ePCM.
//!
//! Paper headline numbers: TacitMap-ePCM ~5.35× the baseline energy;
//! EinsteinBarrier ~1.56× better than the baseline and ~11.94× better
//! than TacitMap-ePCM.

use eb_bench::{banner, paper_factor};
use eb_core::report::{geomean, run_fig8, DEFAULT_BATCH};

fn main() {
    banner(
        "Fig. 8 — Normalized energy vs Baseline-ePCM",
        "Section VI-B, Fig. 8",
    );
    let fig = run_fig8(DEFAULT_BATCH);
    print!("{}", fig.to_table());
    println!();
    println!("Paper vs reproduction:");
    println!(
        "  TacitMap-ePCM energy:      paper ~5.35x worse | measured {} worse",
        paper_factor(fig.mean_tacitmap_ratio())
    );
    println!(
        "  EinsteinBarrier vs base:   paper ~1.56x better | measured {} better",
        paper_factor(fig.mean_einstein_improvement())
    );
    println!(
        "  EinsteinBarrier vs TacitMap: paper ~11.94x better | measured {} better",
        paper_factor(fig.mean_eb_over_tm())
    );
    // The one divergence from the paper, reported explicitly: the tiny
    // LeNet-class CNN pays Eq. 3's transmitter power floor.
    let big: Vec<f64> = fig
        .rows
        .iter()
        .filter(|r| r.network.name() != "CNN-S")
        .map(|r| r.einstein_ratio)
        .collect();
    println!(
        "  (excluding CNN-S, whose Eq. 3 transmitter floor dominates: {} better)",
        paper_factor(1.0 / geomean(big))
    );
}
