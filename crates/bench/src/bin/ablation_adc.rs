//! Ablation of the DESIGN.md calibration choices: how TacitMap-ePCM's
//! headline speedup and energy overhead respond to (a) the number of
//! shared column ADCs per crossbar and (b) the per-conversion ADC
//! energy. This is the footnote-1 discussion of the paper ("we assumed
//! that the columns could be read out in parallel and they do not share
//! an ADC. We will revisit this in Section V") made quantitative.

use eb_bench::banner;
use eb_bitnn::BenchModel;
use eb_core::perf::evaluate_model;
use eb_core::report::{geomean, DEFAULT_BATCH};
use eb_core::Design;

fn main() {
    banner(
        "Ablation — ADC sharing and ADC energy in TacitMap-ePCM",
        "Section III footnote 1 / Section V calibration",
    );
    let base = Design::baseline_epcm();
    let batch = DEFAULT_BATCH;

    println!("(a) Speedup vs number of column ADCs per crossbar (geomean over 6 BNNs):");
    for n_adcs in [1usize, 2, 4, 8, 16, 32, 64, 256] {
        let mut tm = Design::tacitmap_epcm();
        tm.xbar.n_adcs = n_adcs;
        let speedups: Vec<f64> = BenchModel::all()
            .into_iter()
            .map(|m| {
                evaluate_model(&base, m, batch).total_latency_ns()
                    / evaluate_model(&tm, m, batch).total_latency_ns()
            })
            .collect();
        let g = geomean(speedups);
        let bar = "#".repeat((g / 2.0) as usize);
        println!("  {n_adcs:>4} ADCs: {g:>7.1}x {bar}");
    }
    println!("  (fully parallel readout — one ADC per column — recovers the paper's");
    println!("   'theoretical n×' regime; heavy sharing serializes conversions.)");

    println!();
    println!("(b) Energy overhead vs per-conversion ADC energy (geomean over 6 BNNs):");
    for e_adc_pj in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let mut tm = Design::tacitmap_epcm();
        tm.xbar.energies.e_adc_pj = e_adc_pj;
        let ratios: Vec<f64> = BenchModel::all()
            .into_iter()
            .map(|m| {
                evaluate_model(&tm, m, batch).total_energy_j()
                    / evaluate_model(&base, m, batch).total_energy_j()
            })
            .collect();
        println!(
            "  {e_adc_pj:>4.1} pJ/conversion: TacitMap-ePCM burns {:>5.2}x the baseline energy",
            geomean(ratios)
        );
    }
    println!("  (the Fig. 8 'observation 1' penalty is directly the ADC energy price.)");
}
