//! Telemetry overhead on the pool submit path: the same
//! single-inference `submit → wait` round trip through a [`ServePool`],
//! with stage tracing + histogram recording on vs. off (the PR 10
//! acceptance gate: telemetry-on p50 within ≤5% of telemetry-off on the
//! ePCM pool).
//!
//! The correctness gates run even in `--test` smoke mode: both pools
//! must serve the software reference bit-exactly, and the
//! telemetry-on pool must land every request in the per-stage
//! histograms (queue/batch/execute/reply counts == served count).
//!
//! After the timed groups, a per-stage latency breakdown table (p50/p99
//! per stage, from the same histograms that back `GET /metrics`) is
//! printed for both backends — the BENCH_pr10.json source.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eb_bitnn::{BinLinear, Bnn, FixedLinear, Layer, OutputLinear, Shape, Tensor};
use eb_runtime::{BackendKind, PoolConfig, Runtime, ServePool, Stage};
use eb_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn mlp() -> Bnn {
    let mut rng = StdRng::seed_from_u64(23);
    Bnn::new(
        "telemetry-mlp",
        Shape::Flat(64),
        vec![
            Layer::FixedLinear(FixedLinear::random("in", 64, 32, &mut rng)),
            Layer::BinLinear(BinLinear::random("h", 32, 16, &mut rng)),
            Layer::Output(OutputLinear::random("out", 16, 10, &mut rng)),
        ],
    )
    .unwrap()
}

fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 1,
        max_batch: 8,
        // No coalescing linger: the bench times the submit path itself,
        // not a deliberate wait.
        max_wait: Duration::from_micros(0),
        queue_capacity: 64,
    }
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let net = mlp();
    let x = Tensor::from_fn(&[64], |i| ((i * 5) as f32 * 0.043).cos());
    let want = net.forward(&x).expect("reference");
    let backends = [BackendKind::Epcm, BackendKind::Software];

    // Correctness gates (run in smoke mode too): telemetry must not
    // change served bits, and every served request must land in every
    // per-stage histogram.
    for kind in backends {
        let runtime = Runtime::builder().backend(kind).seed(29).build();
        let off = runtime.serve(&net, pool_config()).expect("plain pool");
        assert_eq!(off.handle().infer(&x).expect("serves"), want, "{kind} off");
        off.shutdown();

        let registry = Arc::new(Registry::new());
        let on = ServePool::with_telemetry(&runtime, &net, pool_config(), &registry, "bench")
            .expect("telemetry pool");
        let n = 32;
        for _ in 0..n {
            assert_eq!(on.handle().infer(&x).expect("serves"), want, "{kind} on");
        }
        let stages = on.stage_snapshot().expect("telemetry pool snapshots");
        for (stage, hist) in [
            ("queue", &stages.queue_us),
            ("batch", &stages.batch_us),
            ("execute", &stages.execute_us),
            ("reply", &stages.reply_us),
            ("e2e", &stages.e2e_us),
        ] {
            assert_eq!(
                hist.count(),
                n,
                "{kind}: stage {stage} must record every served request"
            );
        }
        on.shutdown();
    }

    let mut group = c.benchmark_group("telemetry_overhead");
    for kind in backends {
        let runtime = Runtime::builder().backend(kind).seed(29).build();

        let off = runtime.serve(&net, pool_config()).expect("plain pool");
        let handle = off.handle();
        group.bench_with_input(BenchmarkId::new(kind.name(), "off"), &(), |b, ()| {
            b.iter(|| handle.infer(&x).unwrap());
        });
        drop(handle);
        off.shutdown();

        let registry = Arc::new(Registry::new());
        let on = ServePool::with_telemetry(&runtime, &net, pool_config(), &registry, "bench")
            .expect("telemetry pool");
        let handle = on.handle();
        group.bench_with_input(BenchmarkId::new(kind.name(), "on"), &(), |b, ()| {
            b.iter(|| handle.infer(&x).unwrap());
        });
        drop(handle);

        // Per-stage breakdown from the run that just finished — the
        // same histograms GET /metrics would render.
        let stages = on.stage_snapshot().expect("telemetry pool snapshots");
        println!("\nper-stage latency breakdown ({kind}, µs):");
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            "stage", "count", "p50", "p99"
        );
        for (name, hist) in [
            (Stage::Enqueued.as_str(), &stages.queue_us),
            (Stage::Batched.as_str(), &stages.batch_us),
            (Stage::Executed.as_str(), &stages.execute_us),
            (Stage::Replied.as_str(), &stages.reply_us),
            ("e2e", &stages.e2e_us),
        ] {
            println!(
                "{:<10} {:>10} {:>10} {:>10}",
                name,
                hist.count(),
                hist.quantile(0.5),
                hist.quantile(0.99)
            );
        }
        on.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
