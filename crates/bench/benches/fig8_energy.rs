//! Criterion wrapper around the Fig. 8 experiment: measures the wall
//! clock of the energy model per design per network, and checks the
//! headline ratios on every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eb_bitnn::BenchModel;
use eb_core::perf::evaluate_model;
use eb_core::report::run_fig8;
use eb_core::Design;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_energy_model");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for model in BenchModel::all() {
        for (tag, design) in [
            ("baseline", Design::baseline_epcm()),
            ("tacitmap", Design::tacitmap_epcm()),
            ("einstein", Design::einstein_barrier()),
        ] {
            group.bench_with_input(BenchmarkId::new(tag, model.name()), &model, |b, &model| {
                b.iter(|| black_box(evaluate_model(&design, model, 128).total_energy_j()))
            });
        }
    }
    group.finish();

    let fig = run_fig8(128);
    let tm = fig.mean_tacitmap_ratio();
    assert!(
        (2.0..15.0).contains(&tm),
        "TacitMap energy ratio {tm} out of paper-shaped range (paper ~5.35x)"
    );
    assert!(
        fig.mean_eb_over_tm() > 2.0,
        "EinsteinBarrier must recover energy vs TacitMap"
    );
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
