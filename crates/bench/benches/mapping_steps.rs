//! Criterion bench for the Fig. 3 concept: wall-clock of the functional
//! mappers executing one XNOR+Popcount batch on simulated crossbars —
//! TacitMap's single activation vs CustBinaryMap's row scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eb_bitnn::{BitMatrix, BitVec};
use eb_mapping::{CustBinaryMapped, TacitMapped};
use eb_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_execute");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &(m, n) in &[(64usize, 64usize), (128, 128)] {
        let weights = BitMatrix::from_fn(n, m, |r, q| (r * 13 + q * 7) % 3 == 0);
        let cfg = XbarConfig::new(256, 256);
        let input = BitVec::from_bools(&(0..m).map(|i| i % 2 == 0).collect::<Vec<_>>());

        group.bench_with_input(
            BenchmarkId::new("tacitmap", format!("{m}x{n}")),
            &weights,
            |b, w| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut mapped = TacitMapped::program(w, &cfg, &mut rng).expect("fits");
                b.iter(|| black_box(mapped.execute(&input, &mut rng).expect("execute")));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("custbinary", format!("{m}x{n}")),
            &weights,
            |b, w| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut mapped = CustBinaryMapped::program(w, &cfg, &mut rng).expect("fits");
                b.iter(|| black_box(mapped.execute(&input, &mut rng).expect("execute")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
