//! Criterion wrapper around the Fig. 7 experiment: measures the wall
//! clock of the analytic evaluation per design per network, and checks
//! the headline ratios on every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eb_bitnn::BenchModel;
use eb_core::perf::evaluate_model;
use eb_core::report::run_fig7;
use eb_core::Design;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_latency_model");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for model in BenchModel::all() {
        for (tag, design) in [
            ("baseline", Design::baseline_epcm()),
            ("tacitmap", Design::tacitmap_epcm()),
            ("einstein", Design::einstein_barrier()),
        ] {
            group.bench_with_input(BenchmarkId::new(tag, model.name()), &model, |b, &model| {
                b.iter(|| black_box(evaluate_model(&design, model, 128).total_latency_ns()))
            });
        }
    }
    group.finish();

    // One full-figure run with the paper-shape assertions.
    let fig = run_fig7(128);
    assert!(fig.mean_tacitmap_speedup() > 20.0);
    assert!(fig.mean_einstein_speedup() > 300.0);
    let eb_over_tm = fig.mean_eb_over_tm();
    assert!(
        (4.0..30.0).contains(&eb_over_tm),
        "EB/TM gain {eb_over_tm} out of paper-shaped range"
    );
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
