//! Criterion bench for the unified serving runtime: single-request
//! `Session::infer` loops vs one `Session::infer_batch` call, per
//! backend — plus the PR 4 sharded session-pool rows (`serve_pool`
//! group): the same 32-request stream served through a
//! 4-replica `ServePool` whose `DynamicBatcher` coalesces the
//! single-inference submissions into micro-batches.
//!
//! The point of the `Backend`/`Session` split is compile-once,
//! serve-many: every timed iteration here is pure serving against an
//! already-prepared session (crossbars programmed, instruction stream
//! compiled) — preparation happens once outside the timing loop. The
//! interesting ratio per backend is `batchB / (B × single)`:
//!
//! * `software` — rayon fan-out with per-worker `ForwardScratch` reuse,
//! * `epcm` — the batched analog VMM (one conductance resolution per
//!   layer chunk instead of one per sample),
//! * `photonic` — WDM lane packing (up to K samples per optical MMM),
//! * `simulator` — per-sample instruction replay (no batch path; the
//!   loop-vs-batch gap is the trait-default overhead, ≈0).
//!
//! For the pool rows the interesting ratio is `pool4_xB / single_xB`:
//! how much of the batch path's advantage the pool recovers for clients
//! that only ever submit single requests. On a multi-core host the
//! 4 replicas add wall-clock parallelism on top; on a single-CPU host
//! (like the recorded baseline's) all of the recovered speedup is
//! micro-batch coalescing.
//!
//! The PR 5 `pool4_submit_xB` rows drive the same stream through the
//! v2 ticket API (`submit` everything, then `wait` every ticket) —
//! since the blocking calls are wrappers over exactly that path, the
//! `pool4_xB / pool4_submit_xB` gap measures nothing but call-shape
//! overhead, and `pool4_xB` vs its `BENCH_pr4.json` recording measures
//! the ticket machinery against the old mpsc-reply-channel plumbing
//! (acceptance: no >5% regression).
//!
//! Before anything is timed, every backend's batch output — and the
//! pool's — is asserted identical to its single-call outputs through the
//! same trait objects.

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{Dataset, DatasetKind, MlpTrainer, Tensor, TrainConfig};
use eb_runtime::{BackendKind, Request, Runtime, Session, Ticket};
use std::hint::black_box;
use std::time::Duration;

const BATCH: usize = 32;

/// The served network: a trained 784-64-32-10 BinaryConnect MLP — small
/// enough that the per-sample simulator replay keeps bench time sane,
/// real enough to exercise every layer kind the substrates serve.
fn serve_net() -> (eb_bitnn::Bnn, Vec<Tensor>) {
    let data = Dataset::generate(DatasetKind::Mnist, BATCH.max(64), 13).flattened();
    let mut trainer = MlpTrainer::new(
        &[784, 64, 32, 10],
        TrainConfig {
            learning_rate: 0.05,
            epochs: 2,
            batch_size: 16,
            seed: 3,
        },
    );
    trainer.fit(&data);
    let net = trainer.to_bnn("serve-throughput-mlp").expect("valid net");
    let requests: Vec<Tensor> = data.iter().take(BATCH).map(|(x, _)| x.clone()).collect();
    (net, requests)
}

fn single_loop(session: &mut dyn Session, requests: &[Tensor]) -> Tensor {
    let mut last = None;
    for x in requests {
        last = Some(session.infer(x).expect("infer"));
    }
    last.expect("non-empty batch")
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (net, requests) = serve_net();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(2500));

    for kind in BackendKind::all() {
        // Prepare once per backend — deliberately outside the timing loop.
        let runtime = Runtime::builder().backend(kind).build();
        let mut single = runtime.prepare(&net).expect("prepare");
        let mut batched = runtime.prepare(&net).expect("prepare");

        // Correctness gate: batch serving must agree with single-call
        // serving through the same trait objects before timing is trusted.
        let singles: Vec<Tensor> = requests
            .iter()
            .map(|x| single.infer(x).expect("infer"))
            .collect();
        let batch = batched.infer_batch(&requests).expect("infer_batch");
        assert_eq!(batch, singles, "{kind}: batch path must match singles");

        group.bench_function(format!("{kind}/single_x{BATCH}"), |b| {
            b.iter(|| black_box(single_loop(single.as_mut(), &requests)))
        });
        group.bench_function(format!("{kind}/batch{BATCH}"), |b| {
            b.iter(|| black_box(batched.infer_batch(&requests).expect("infer_batch")))
        });
    }
    group.finish();
}

fn bench_pool_throughput(c: &mut Criterion) {
    let (net, requests) = serve_net();

    let mut group = c.benchmark_group("serve_pool");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(2500));

    // The two headline substrates: software (pure-parallelism story) and
    // epcm (micro-batching amortizes analog device resolution). The
    // photonic/simulator pools behave like their batch rows above but at
    // minutes-long measurement times, so they are left out of the bench.
    for kind in [BackendKind::Software, BackendKind::Epcm] {
        let pool = Runtime::builder()
            .backend(kind)
            .replicas(4)
            .max_batch(8)
            .max_wait(Duration::from_micros(500))
            .serve(&net)
            .expect("pool");
        let handle = pool.handle();

        // Correctness gate: the pool must be bit-exact against a single
        // session before its timings are trusted.
        let mut single = Runtime::builder()
            .backend(kind)
            .prepare(&net)
            .expect("prepare");
        let singles: Vec<Tensor> = requests
            .iter()
            .map(|x| single.infer(x).expect("infer"))
            .collect();
        assert_eq!(
            handle.infer_many(&requests).expect("pool serve"),
            singles,
            "{kind}: pooled serving must match a single session"
        );

        group.bench_function(format!("{kind}/pool4_x{BATCH}"), |b| {
            b.iter(|| black_box(handle.infer_many(&requests).expect("pool serve")))
        });

        // The explicit v2 ticket shape: submit the whole stream without
        // blocking, then collect every ticket.
        group.bench_function(format!("{kind}/pool4_submit_x{BATCH}"), |b| {
            b.iter(|| {
                let tickets: Vec<Ticket> = requests
                    .iter()
                    .map(|x| handle.submit(Request::new(x.clone())).expect("submit"))
                    .collect();
                for ticket in tickets {
                    black_box(ticket.wait().expect("ticket"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput, bench_pool_throughput);
criterion_main!(benches);
