//! Criterion bench for the bit-parallel inference engine: the packed
//! im2col + word-level XNOR-GEMM convolution path against the naive
//! per-pixel reference it is property-tested against, plus the raw GEMM
//! kernel and the batched analog VMM.
//!
//! The headline comparison is a 128-channel 3×3 binary conv layer
//! (`binconv/*_128ch_3x3`): the acceptance bar for this engine is ≥5×
//! packed-over-naive on that shape.

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{ops, BinConv, BitMatrix, BitTensor, BitVec, FixedConv, Tensor};
use eb_xbar::{CrossbarArray, DeviceParams, VmmEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn feature_map(c: usize, h: usize, w: usize) -> BitTensor {
    let mut t = BitTensor::zeros(c, h, w);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                if (ci * 31 + y * 7 + x * 3) % 5 < 2 {
                    t.set(ci, y, x, true);
                }
            }
        }
    }
    t
}

fn bench_binconv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // The acceptance-criteria shape: 128 input channels, 3×3 kernel,
    // 128 filters on a 16×16 map (196 sliding windows, fan-in 1152).
    let conv = BinConv::random("c", 128, 128, 3, 1, 0, &mut rng);
    let t = feature_map(128, 16, 16);
    assert_eq!(
        conv.forward(&t).expect("packed"),
        conv.forward_naive(&t).expect("naive"),
        "packed conv must be bit-exact against the naive oracle"
    );
    let mut group = c.benchmark_group("binconv");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("naive_128ch_3x3", |b| {
        b.iter(|| black_box(conv.forward_naive(&t).expect("naive")))
    });
    group.bench_function("packed_128ch_3x3", |b| {
        b.iter(|| black_box(conv.forward(&t).expect("packed")))
    });
    group.finish();
}

fn bench_fixed_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let conv = FixedConv::random("c1", 3, 64, 3, 1, 1, &mut rng);
    let t = Tensor::from_fn(&[3, 32, 32], |i| ((i as f32) * 0.113).sin());
    assert_eq!(
        conv.forward(&t).expect("packed"),
        conv.forward_naive(&t).expect("naive"),
        "packed fixed conv must be bit-exact against the naive oracle"
    );
    let mut group = c.benchmark_group("fixedconv");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1000));
    group.bench_function("naive_3ch_32x32", |b| {
        b.iter(|| black_box(conv.forward_naive(&t).expect("naive")))
    });
    group.bench_function("packed_3ch_32x32", |b| {
        b.iter(|| black_box(conv.forward(&t).expect("packed")))
    });
    group.finish();
}

fn bench_gemm_kernel(c: &mut Criterion) {
    // Raw kernel comparison on the im2col shape of the conv above:
    // 196 windows × (128 filters × 1152 fan-in).
    let windows = BitMatrix::from_fn(196, 1152, |r, q| (r * 17 + q * 5) % 7 < 3);
    let filters = BitMatrix::from_fn(128, 1152, |r, q| (r + q) % 3 == 0);
    let mut group = c.benchmark_group("xnor_gemm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1000));
    group.bench_function("rowwise_bitvec_196x128x1152", |b| {
        b.iter(|| {
            // The pre-refactor shape of the kernel: one owned BitVec per
            // matrix row, XNOR through an allocated intermediate.
            let out: Vec<Vec<u32>> = windows
                .iter_rows()
                .map(|inp| {
                    filters
                        .iter_rows()
                        .map(|f| inp.xnor(&f).popcount())
                        .collect()
                })
                .collect();
            black_box(out)
        })
    });
    group.bench_function("blocked_words_196x128x1152", |b| {
        b.iter(|| black_box(ops::binary_mmm_popcounts(&windows, &filters)))
    });
    group.finish();
}

fn bench_vmm_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let bits = BitMatrix::from_fn(256, 256, |r, q| (r * q) % 3 == 0);
    let mut array = CrossbarArray::new(256, 256, DeviceParams::ideal());
    array.program_matrix(&bits, &mut rng).expect("fits");
    let engine = VmmEngine::with_defaults(array);
    let inputs: Vec<BitVec> = (0..64)
        .map(|k| BitVec::from_bools(&(0..256).map(|i| (i + k) % 3 == 0).collect::<Vec<_>>()))
        .collect();
    let mut group = c.benchmark_group("analog_vmm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1000));
    group.bench_function("repeated_singles_64x256x256", |b| {
        b.iter(|| {
            let out: Vec<Vec<u32>> = inputs
                .iter()
                .map(|v| engine.vmm_counts(v, &mut rng).expect("vmm"))
                .collect();
            black_box(out)
        })
    });
    group.bench_function("batched_64x256x256", |b| {
        b.iter(|| black_box(engine.vmm_counts_batch(&inputs, &mut rng).expect("vmm")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_binconv,
    bench_fixed_conv,
    bench_gemm_kernel,
    bench_vmm_batch
);
criterion_main!(benches);
