//! Criterion bench for the mini-batch GEMM training engine: one training
//! epoch on the acceptance-criteria MLP (784-256-128-10) through
//!
//! * the seed per-sample path (`MlpTrainer::step` in a loop — scalar
//!   branchy kernels, per-sample allocations, per-sample re-binarization),
//! * the batched engine at `batch_size = 1` (strict seed-order kernels,
//!   scratch reuse, binarize-once-per-step), and
//! * the batched engine at `batch_size = 32` (8-lane GEMM kernels).
//!
//! The acceptance bar for this engine is ≥4× epoch throughput for the
//! `minibatch32` path over the per-sample path. Every iteration trains
//! one epoch from the same initial weights (the trainer is cloned per
//! iteration) so the measured work is identical and state-independent;
//! the `TrainScratch` persists across iterations, as in a real fit loop.

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{Dataset, DatasetKind, MlpTrainer, Tensor, TrainConfig, TrainScratch};
use std::hint::black_box;
use std::time::Duration;

const DIMS: &[usize] = &[784, 256, 128, 10];
const N_SAMPLES: usize = 96;

fn training_data() -> Vec<(Tensor, usize)> {
    Dataset::generate(DatasetKind::Mnist, N_SAMPLES, 21).flattened()
}

/// One epoch through the seed per-sample path.
fn per_sample_epoch(t: &mut MlpTrainer, samples: &[(Tensor, usize)], order: &[usize]) -> f32 {
    let mut total = 0.0f32;
    for &i in order {
        let (x, y) = &samples[i];
        total += t.step(x.as_slice(), *y);
    }
    total / samples.len() as f32
}

fn bench_train_epoch(c: &mut Criterion) {
    let samples = training_data();
    let order: Vec<usize> = (0..samples.len()).collect();

    // Correctness gate: the batch-1 engine must reproduce the per-sample
    // path bit for bit before any timing is trusted.
    {
        let cfg = TrainConfig {
            learning_rate: 0.02,
            epochs: 1,
            batch_size: 1,
            seed: 5,
        };
        let mut engine = MlpTrainer::new(&[784, 32, 10], cfg);
        let mut reference = engine.clone();
        let le = engine.train_epoch(&samples, &order, &mut TrainScratch::new());
        let lr = per_sample_epoch(&mut reference, &samples, &order);
        assert_eq!(
            le.to_bits(),
            lr.to_bits(),
            "batch-1 engine must match the per-sample seed path bit for bit"
        );
        assert_eq!(engine.binarized_weights(), reference.binarized_weights());
    }

    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(2500));

    let cfg = |batch_size: usize| TrainConfig {
        learning_rate: 0.01,
        epochs: 1,
        batch_size,
        seed: 7,
    };

    let per_sample_init = MlpTrainer::new(DIMS, cfg(1));
    group.bench_function("per_sample_784_256_128_10_n96", |b| {
        b.iter(|| {
            let mut t = per_sample_init.clone();
            black_box(per_sample_epoch(&mut t, &samples, &order))
        })
    });

    let strict_init = MlpTrainer::new(DIMS, cfg(1));
    let mut strict_scratch = TrainScratch::new();
    group.bench_function("minibatch1_strict_784_256_128_10_n96", |b| {
        b.iter(|| {
            let mut t = strict_init.clone();
            black_box(t.train_epoch(&samples, &order, &mut strict_scratch))
        })
    });

    let gemm_init = MlpTrainer::new(DIMS, cfg(32));
    let mut gemm_scratch = TrainScratch::new();
    group.bench_function("minibatch32_784_256_128_10_n96", |b| {
        b.iter(|| {
            let mut t = gemm_init.clone();
            black_box(t.train_epoch(&samples, &order, &mut gemm_scratch))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
