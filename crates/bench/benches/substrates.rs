//! Microbenchmarks of the substrates: packed XNOR+popcount kernels,
//! analog crossbar VMM, optical WDM MMM, and the end-to-end simulated
//! inference (TacitMap-ePCM vs EinsteinBarrier on a small MLP).

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{
    ops, BinLinear, BitMatrix, BitVec, Bnn, FixedLinear, Layer, OutputLinear, Shape, Tensor,
};
use eb_core::{simulate_inference, Design, OpticalTacitMapped};
use eb_xbar::{CrossbarArray, DeviceParams, VmmEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bitops(c: &mut Criterion) {
    let a = BitVec::from_bools(&(0..4096).map(|i| i % 3 == 0).collect::<Vec<_>>());
    let b = BitVec::from_bools(&(0..4096).map(|i| i % 5 != 0).collect::<Vec<_>>());
    c.bench_function("xnor_popcount_4096", |bench| {
        bench.iter(|| black_box(ops::xnor_popcount(&a, &b)))
    });
    let w = BitMatrix::from_fn(256, 4096, |r, q| (r + q) % 7 == 0);
    c.bench_function("binary_linear_256x4096", |bench| {
        bench.iter(|| black_box(ops::binary_linear_popcounts(&a, &w)))
    });
}

fn bench_analog_vmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let bits = BitMatrix::from_fn(256, 256, |r, q| (r * q) % 3 == 0);
    let mut array = CrossbarArray::new(256, 256, DeviceParams::ideal());
    array.program_matrix(&bits, &mut rng).expect("fits");
    let engine = VmmEngine::with_defaults(array);
    let drive = BitVec::from_bools(&(0..256).map(|i| i % 2 == 0).collect::<Vec<_>>());
    c.bench_function("analog_vmm_256x256", |bench| {
        bench.iter(|| black_box(engine.vmm_counts(&drive, &mut rng).expect("vmm")))
    });
}

fn bench_optical_mmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let weights = BitMatrix::from_fn(64, 64, |r, q| (r + 2 * q) % 3 == 0);
    let mut mapped = OpticalTacitMapped::program(&weights, 256, 64, 16, &mut rng).expect("fits");
    let inputs: Vec<BitVec> = (0..16)
        .map(|k| BitVec::from_bools(&(0..64).map(|i| (i + k) % 3 == 0).collect::<Vec<_>>()))
        .collect();
    c.bench_function("optical_mmm_16lanes_64x64", |bench| {
        bench.iter(|| black_box(mapped.execute_wdm(&inputs, &mut rng).expect("mmm")))
    });
}

fn bench_simulated_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let net = Bnn::new(
        "bench-mlp",
        Shape::Flat(64),
        vec![
            Layer::FixedLinear(FixedLinear::random("in", 64, 32, &mut rng)),
            Layer::BinLinear(BinLinear::random("h1", 32, 32, &mut rng)),
            Layer::Output(OutputLinear::random("out", 32, 10, &mut rng)),
        ],
    )
    .expect("valid");
    let x = Tensor::from_fn(&[64], |i| ((i as f32) * 0.1).sin());
    let mut group = c.benchmark_group("simulated_inference");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (tag, design) in [
        ("tacitmap_epcm", Design::tacitmap_epcm()),
        ("einstein_barrier", Design::einstein_barrier()),
    ] {
        group.bench_function(tag, |bench| {
            bench.iter(|| {
                black_box(simulate_inference(&design, &net, &x, &mut rng).expect("simulate"))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets =
    bench_bitops,
    bench_analog_vmm,
    bench_optical_mmm,
    bench_simulated_inference
}
criterion_main!(benches);
