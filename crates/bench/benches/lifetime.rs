//! Criterion bench for the device-lifetime machinery: what robustness
//! costs while serving, and how fast the system recovers.
//!
//! Three questions, three rows:
//!
//! * `probe_x24` — the price of a health checkup: one 24-canary
//!   `HealthProbe` served through a 2-replica ePCM pool as ordinary
//!   queue traffic. This is the maintenance loop's per-model, per-tick
//!   cost, and it rides the same micro-batching as client requests.
//! * `faulted_infer_x16` vs `healthy_infer_x16` — the serving-path cost
//!   of the fault overlay itself: 16 inferences through an ePCM session
//!   with a 20% dead-cell map versus a fault-free one. The overlay is a
//!   per-cell hash on the snapshot path, so the gap should be small and
//!   flat.
//! * `heal_swap` — time-to-recover: `Server::heal` rebuilds the model's
//!   2-replica pool (reprogramming every crossbar) and hot-swaps it in,
//!   draining the old pool. This is the end-to-end outage-free repair
//!   latency the maintenance loop pays on degradation.
//!
//! Before timing, the degradation story is sanity-pinned: a 40%
//! dead-cell profile must push canary agreement below the 0.9 floor and
//! healing must restore exact agreement.

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{Dataset, DatasetKind, MlpTrainer, Tensor, TrainConfig};
use eb_runtime::{BackendKind, HealthProbe, ModelOpts, PoolConfig, Runtime, Server};
use eb_xbar::FaultConfig;
use std::hint::black_box;
use std::time::Duration;

fn trained_net() -> (eb_bitnn::Bnn, Vec<Tensor>) {
    let data = Dataset::generate(DatasetKind::Mnist, 64, 13).flattened();
    let mut trainer = MlpTrainer::new(
        &[784, 32, 16, 10],
        TrainConfig {
            learning_rate: 0.05,
            epochs: 2,
            batch_size: 16,
            seed: 3,
        },
    );
    trainer.fit(&data);
    let net = trainer.to_bnn("lifetime-bench-mlp").expect("valid net");
    let canaries: Vec<Tensor> = data.iter().take(24).map(|(x, _)| x.clone()).collect();
    (net, canaries)
}

fn bench_lifetime(c: &mut Criterion) {
    let (net, canaries) = trained_net();
    let probe = HealthProbe::golden(&net, canaries.clone(), 0.9).expect("probe");
    let opts = ModelOpts {
        backend: BackendKind::Epcm,
        pool: PoolConfig {
            replicas: 2,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            queue_capacity: 256,
        },
        ..ModelOpts::default()
    };
    let server = Server::builder()
        .model_with("m", &net, opts)
        .serve()
        .expect("server");

    // Correctness gate: the degradation story must hold before its costs
    // are worth timing.
    assert_eq!(server.health("m", &probe).expect("probe").agreement, 1.0);
    server
        .inject_faults("m", FaultConfig::dead_cells(0.4, 7))
        .expect("inject");
    assert!(
        !server.health("m", &probe).expect("probe").is_healthy(),
        "40% dead cells must trip the 0.9 floor"
    );
    server.heal("m").expect("heal");
    assert_eq!(
        server.health("m", &probe).expect("probe").agreement,
        1.0,
        "healing must restore exact agreement"
    );

    let mut group = c.benchmark_group("lifetime");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(2500));

    group.bench_function("probe_x24", |b| {
        b.iter(|| black_box(server.health("m", &probe).expect("probe")))
    });

    // Fault-overlay serving cost: same session shape, with and without a
    // 20% dead-cell map.
    let xs: Vec<Tensor> = canaries.iter().take(16).cloned().collect();
    let mut healthy = Runtime::builder()
        .backend(BackendKind::Epcm)
        .prepare(&net)
        .expect("prepare");
    let mut faulted = Runtime::builder()
        .backend(BackendKind::Epcm)
        .fault(FaultConfig::dead_cells(0.2, 7))
        .prepare(&net)
        .expect("prepare");
    group.bench_function("healthy_infer_x16", |b| {
        b.iter(|| black_box(healthy.infer_batch(&xs).expect("infer")))
    });
    group.bench_function("faulted_infer_x16", |b| {
        b.iter(|| black_box(faulted.infer_batch(&xs).expect("infer")))
    });

    // Time-to-recover: rebuild + hot-swap the 2-replica pool. Healing an
    // already-healthy model does the same work as healing a degraded one
    // (prepare, switch, drain), so each iteration is identical.
    group.bench_function("heal_swap", |b| {
        b.iter(|| black_box(server.heal("m").expect("heal")))
    });

    group.finish();
}

criterion_group!(benches, bench_lifetime);
criterion_main!(benches);
