//! Cold-start-to-first-inference on the ePCM substrate: how long from
//! "nothing in memory" to the first served logits, for the three
//! deployment stories the artifact subsystem distinguishes:
//!
//! * `retrain_prepare` — no artifact: train the network from data, then
//!   program the crossbars (the pre-artifact cold start).
//! * `load_prepare` — load a model-only `.ebm` and program crossbars
//!   from the stored weights (deploy-from-file).
//! * `load_prepared_state` — load an `.ebm` carrying the programmed
//!   conductances and restore them directly, skipping programming.
//!
//! The `_noisy` pair repeats the two load paths under the noisy device
//! profile, where fresh programming draws per-cell Gaussian variability
//! — the configuration prepared state exists for, since restoring is
//! the only way to reproduce a captured noise realization.
//!
//! Each measured iteration ends with one real inference, and the ideal
//! variants' logits are asserted identical up front — the speedup is
//! never allowed to change the served answer.

use criterion::{criterion_group, criterion_main, Criterion};
use eb_bitnn::{Bnn, Dataset, DatasetKind, MlpTrainer, Tensor, TrainConfig};
use eb_runtime::{BackendKind, NoiseProfile, Runtime};
use std::hint::black_box;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eb-bench-coldstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The full training leg of the no-artifact cold start.
fn train(samples: &[(Tensor, usize)]) -> Bnn {
    let mut trainer = MlpTrainer::new(
        &[784, 32, 16, 10],
        TrainConfig {
            learning_rate: 0.06,
            epochs: 2,
            batch_size: 16,
            seed: 17,
        },
    );
    trainer.fit(samples);
    trainer.to_bnn("coldstart-mlp").expect("exportable")
}

fn bench_coldstart(c: &mut Criterion) {
    let samples = Dataset::generate(DatasetKind::Mnist, 64, 17).flattened();
    let x = samples[0].0.clone();
    let runtime = Runtime::builder()
        .backend(BackendKind::Epcm)
        .seed(13)
        .build();

    // Artifacts written once, outside the timed region — benchmarks
    // start from the file exactly like a fresh process would.
    let net = train(&samples);
    let model_only = scratch("model-only.ebm");
    Runtime::builder()
        .backend(BackendKind::Software)
        .build()
        .save_artifact(&net, &model_only)
        .expect("write model-only artifact");
    let with_prepared = scratch("prepared.ebm");
    runtime
        .save_artifact(&net, &with_prepared)
        .expect("write prepared artifact");

    // Correctness gate: all three cold-start paths serve identical
    // logits before any of them is timed.
    let want = net.forward(&x).expect("reference");
    for path in [&model_only, &with_prepared] {
        let mut session = runtime.prepare_from_file(path).expect("loads");
        assert_eq!(session.infer(&x).expect("serves"), want, "{path:?}");
    }

    let mut group = c.benchmark_group("coldstart_epcm");
    group.sample_size(10);
    group.bench_function("retrain_prepare", |b| {
        b.iter(|| {
            let net = train(&samples);
            let mut session = runtime.prepare(&net).expect("prepares");
            black_box(session.infer(&x).expect("serves"))
        })
    });
    group.bench_function("load_prepare", |b| {
        b.iter(|| {
            let mut session = runtime.prepare_from_file(&model_only).expect("loads");
            black_box(session.infer(&x).expect("serves"))
        })
    });
    group.bench_function("load_prepared_state", |b| {
        b.iter(|| {
            let mut session = runtime.prepare_from_file(&with_prepared).expect("restores");
            black_box(session.infer(&x).expect("serves"))
        })
    });

    let noisy = Runtime::builder()
        .backend(BackendKind::Epcm)
        .noise_profile(NoiseProfile::Noisy)
        .seed(13)
        .build();
    let noisy_prepared = scratch("noisy-prepared.ebm");
    noisy
        .save_artifact(&net, &noisy_prepared)
        .expect("write noisy prepared artifact");
    group.bench_function("load_prepare_noisy", |b| {
        b.iter(|| {
            let mut session = noisy.prepare_from_file(&model_only).expect("loads");
            black_box(session.infer(&x).expect("serves"))
        })
    });
    group.bench_function("load_prepared_state_noisy", |b| {
        b.iter(|| {
            let mut session = noisy.prepare_from_file(&noisy_prepared).expect("restores");
            black_box(session.infer(&x).expect("serves"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coldstart);
criterion_main!(benches);
