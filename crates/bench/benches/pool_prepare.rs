//! Pool spin-up cost vs replica count under the shared-core replica
//! architecture: with one programmed core per pool, `prepare` time
//! should stay ~flat from 1 to 16 replicas (the PR 9 acceptance gate:
//! 16-replica ePCM spin-up ≤ 1.5× the 1-replica spin-up), because the
//! expensive work — programming crossbars, compiling the instruction
//! stream — happens once and replicas only mint cheap rinds (an RNG,
//! scratch, counters) on top of the shared `Arc`.
//!
//! The correctness gate runs even in `--test` smoke mode: a 16-replica
//! pool on each measured backend must serve the software reference
//! bit-exactly before anything is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eb_bitnn::{BinLinear, Bnn, FixedLinear, Layer, OutputLinear, Shape, Tensor};
use eb_runtime::{BackendKind, PoolConfig, Runtime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The coldstart-bench MLP shape (784-32-16-10): large enough that the
/// 784-wide first layer maps onto several chunked 256×256 crossbars,
/// so programming cost is real.
fn mlp() -> Bnn {
    let mut rng = StdRng::seed_from_u64(17);
    Bnn::new(
        "pool-prepare-mlp",
        Shape::Flat(784),
        vec![
            Layer::FixedLinear(FixedLinear::random("in", 784, 32, &mut rng)),
            Layer::BinLinear(BinLinear::random("h", 32, 16, &mut rng)),
            Layer::Output(OutputLinear::random("out", 16, 10, &mut rng)),
        ],
    )
    .unwrap()
}

fn pool_config(replicas: usize) -> PoolConfig {
    PoolConfig {
        replicas,
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        queue_capacity: 64,
    }
}

fn bench_pool_prepare(c: &mut Criterion) {
    let net = mlp();
    let x = Tensor::from_fn(&[784], |i| ((i * 7) as f32 * 0.031).sin());
    let want = net.forward(&x).expect("reference");
    let backends = [BackendKind::Epcm, BackendKind::Simulator];

    // Correctness gate: 16 replicas sharing one programmed core must
    // still serve the software reference bit-exactly.
    for kind in backends {
        let runtime = Runtime::builder().backend(kind).seed(11).build();
        let pool = runtime.serve(&net, pool_config(16)).expect("pool");
        assert_eq!(pool.handle().infer(&x).expect("serves"), want, "{kind}");
        let stats = pool.shutdown();
        assert!(stats.prepare_ns > 0 && stats.core_bytes > 0, "{kind}");
    }

    let mut group = c.benchmark_group("pool_prepare");
    group.sample_size(10);
    for kind in backends {
        let runtime = Runtime::builder().backend(kind).seed(11).build();
        for replicas in [1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), replicas),
                &replicas,
                |b, &replicas| {
                    // Spin-up end to end: session minting plus worker
                    // threads. The drop (drain + join) rides inside the
                    // timed region too — it is what a redeploy pays.
                    b.iter(|| runtime.serve(&net, pool_config(replicas)).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pool_prepare);
criterion_main!(benches);
