//! The optical crossbar: an oPCM device grid performing WDM-parallel
//! matrix–matrix multiplication (the paper's MMM, Fig. 5-(b)).
//!
//! Each wavelength carries one input vector; every device attenuates all
//! wavelengths identically (GST absorption is broadband across the C
//! band); per-column wavelength demultiplexing recovers one accumulated
//! popcount per (wavelength, column) pair in a single time step.

use crate::error::PhotonicsError;
use crate::opcm::{OpcmDevice, OpcmParams};
use crate::receiver::Receiver;
use crate::transmitter::WdmFrame;
use eb_bitnn::BitMatrix;
use rand::Rng;

/// An optical crossbar of binary oPCM devices.
///
/// # Examples
///
/// ```
/// use eb_photonics::{OpticalCrossbar, OpcmParams, Transmitter, Receiver};
/// use eb_bitnn::{BitMatrix, BitVec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut xbar = OpticalCrossbar::new(4, 2, OpcmParams::ideal_binary());
/// xbar.program_matrix(&BitMatrix::from_fn(4, 2, |r, _| r % 2 == 0), &mut rng)?;
/// let tx = Transmitter::with_capacity(4);
/// let frame = tx.encode(&[BitVec::ones(4)])?;
/// let counts = xbar.mmm_counts(&frame, &Receiver::ideal(), &mut rng)?;
/// assert_eq!(counts, vec![vec![2, 2]]);
/// # Ok::<(), eb_photonics::PhotonicsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OpticalCrossbar {
    rows: usize,
    cols: usize,
    params: OpcmParams,
    devices: Vec<Option<OpcmDevice>>,
    writes: u64,
}

impl OpticalCrossbar {
    /// Creates an unprogrammed optical crossbar.
    pub fn new(rows: usize, cols: usize, params: OpcmParams) -> Self {
        Self {
            rows,
            cols,
            params,
            devices: vec![None; rows * cols],
            writes: 0,
        }
    }

    /// Approximate resident bytes of this crossbar (struct plus the
    /// device grid) — the memory-accounting surface for shared-weight
    /// replica telemetry.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.devices.capacity() * std::mem::size_of::<Option<OpcmDevice>>()
    }

    /// Rows (input waveguides).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (output waveguides).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Device parameters.
    pub fn params(&self) -> &OpcmParams {
        &self.params
    }

    /// Total device writes (endurance accounting).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// The device at `(r, c)`, or `None` if unprogrammed or out of range.
    pub fn device(&self, r: usize, c: usize) -> Option<&OpcmDevice> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        self.devices[self.idx(r, c)].as_ref()
    }

    /// Rebuilds a crossbar from serialized state: the exact device grid
    /// (row-major, `None` for unprogrammed cells) and write counter a
    /// previously programmed crossbar held. Restoring is not a re-program
    /// — no RNG draws happen and no writes are counted.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DimensionMismatch`] when the grid length
    /// differs from `rows * cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        params: OpcmParams,
        devices: Vec<Option<OpcmDevice>>,
        writes: u64,
    ) -> Result<Self, PhotonicsError> {
        if devices.len() != rows * cols {
            return Err(PhotonicsError::DimensionMismatch {
                what: "restored device grid",
                expected: rows * cols,
                got: devices.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            params,
            devices,
            writes,
        })
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// Programs one device to a binary state.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::OutOfBounds`] outside the array.
    pub fn program_bit(
        &mut self,
        r: usize,
        c: usize,
        bit: bool,
        rng: &mut impl Rng,
    ) -> Result<(), PhotonicsError> {
        if r >= self.rows || c >= self.cols {
            return Err(PhotonicsError::OutOfBounds {
                row: r,
                col: c,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let i = self.idx(r, c);
        self.devices[i] = Some(OpcmDevice::program_bit(bit, &self.params, rng));
        self.writes += 1;
        Ok(())
    }

    /// Programs a bit matrix anchored at the origin.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::OutOfBounds`] if the matrix exceeds the
    /// array.
    pub fn program_matrix(
        &mut self,
        bits: &BitMatrix,
        rng: &mut impl Rng,
    ) -> Result<(), PhotonicsError> {
        if bits.rows() > self.rows || bits.cols() > self.cols {
            return Err(PhotonicsError::OutOfBounds {
                row: bits.rows(),
                col: bits.cols(),
                rows: self.rows,
                cols: self.cols,
            });
        }
        for r in 0..bits.rows() {
            for c in 0..bits.cols() {
                self.program_bit(r, c, bits.get(r, c) == Some(true), rng)?;
            }
        }
        Ok(())
    }

    /// Stored bit of a device (`None` if unprogrammed or out of range).
    pub fn stored_bit(&self, r: usize, c: usize) -> Option<bool> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        self.devices[self.idx(r, c)]
            .as_ref()
            .map(OpcmDevice::stored_bit)
    }

    fn transmission(&self, r: usize, c: usize) -> f64 {
        match &self.devices[self.idx(r, c)] {
            Some(d) => d.transmission(),
            // Pristine GST is amorphous (transparent).
            None => self.params.t_high,
        }
    }

    /// One WDM MMM step: all wavelengths of `frame` traverse the crossbar
    /// simultaneously; returns `counts[k][c]` = recovered AND-accumulation
    /// of input `k` against column `c`.
    ///
    /// The readout is offset-calibrated: the controller knows each input's
    /// popcount, so the `t_low` leakage of crystalline devices is
    /// subtracted before rounding (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DimensionMismatch`] if the frame row count
    /// differs from the crossbar rows.
    pub fn mmm_counts(
        &self,
        frame: &WdmFrame,
        receiver: &Receiver,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, PhotonicsError> {
        if frame.rows() != self.rows {
            return Err(PhotonicsError::DimensionMismatch {
                what: "WDM frame rows",
                expected: self.rows,
                got: frame.rows(),
            });
        }
        let p_on = frame.on_power_mw();
        let unit_v = receiver.tia.gain_ohm
            * receiver.detector.responsivity
            * (p_on * 1e-3)
            * (self.params.t_high - self.params.t_low);
        let mut out = Vec::with_capacity(frame.wavelengths());
        for (k, row_powers) in frame.powers().iter().enumerate() {
            let mut counts = Vec::with_capacity(self.cols);
            for c in 0..self.cols {
                let power_mw: f64 = (0..self.rows)
                    .map(|r| row_powers[r] * self.transmission(r, c))
                    .sum();
                let v = receiver.receive_mw(power_mw, rng);
                // Subtract the known offsets: dark current and the t_low
                // leakage of the input's active rows.
                let v_dark = receiver.tia.gain_ohm * receiver.detector.dark_current_a;
                let v_leak = receiver.tia.gain_ohm
                    * receiver.detector.responsivity
                    * (p_on * 1e-3)
                    * self.params.t_low
                    * frame.active_rows(k) as f64;
                let count = ((v - v_dark - v_leak) / unit_v).round();
                counts.push(count.clamp(0.0, self.rows as f64) as u32);
            }
            out.push(counts);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transmitter::Transmitter;
    use eb_bitnn::{ops, BitVec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8)
    }

    #[test]
    fn single_wavelength_vmm_matches_and_accumulate() {
        let mut r = rng();
        let bits = BitMatrix::from_fn(8, 3, |a, b| (a * 3 + b) % 4 != 1);
        let mut xbar = OpticalCrossbar::new(8, 3, OpcmParams::ideal_binary());
        xbar.program_matrix(&bits, &mut r).unwrap();
        let tx = Transmitter::with_capacity(4);
        let v = BitVec::from_bools(&[true, false, true, true, false, false, true, true]);
        let frame = tx.encode(std::slice::from_ref(&v)).unwrap();
        let counts = xbar.mmm_counts(&frame, &Receiver::ideal(), &mut r).unwrap();
        for c in 0..3 {
            assert_eq!(counts[0][c], v.and(&bits.col(c)).popcount(), "col {c}");
        }
    }

    #[test]
    fn wdm_mmm_equals_stacked_vmms() {
        // The core WDM claim (Fig. 5): K vectors in one step produce the
        // same counts as K sequential single-vector steps.
        let mut r = rng();
        let bits = BitMatrix::from_fn(16, 5, |a, b| (a + 7 * b) % 3 == 0);
        let mut xbar = OpticalCrossbar::new(16, 5, OpcmParams::ideal_binary());
        xbar.program_matrix(&bits, &mut r).unwrap();
        let tx = Transmitter::with_capacity(4);
        let vs: Vec<BitVec> = (0..4)
            .map(|k| {
                BitVec::from_bools(&(0..16).map(|i| (i * (k + 2)) % 5 < 2).collect::<Vec<_>>())
            })
            .collect();
        let frame = tx.encode(&vs).unwrap();
        let mmm = xbar.mmm_counts(&frame, &Receiver::ideal(), &mut r).unwrap();
        for (k, v) in vs.iter().enumerate() {
            let single = tx.encode(std::slice::from_ref(v)).unwrap();
            let vmm = xbar
                .mmm_counts(&single, &Receiver::ideal(), &mut r)
                .unwrap();
            assert_eq!(mmm[k], vmm[0], "wavelength {k}");
        }
    }

    #[test]
    fn tacitmap_on_opcm_recovers_xnor_popcount() {
        // Full stack: TacitMap column layout + WDM input = Fig. 5-(b).
        let mut r = rng();
        let w = BitVec::from_bools(&[true, false, false, true, true]);
        let column = w.concat(&w.complement());
        let bits = BitMatrix::from_fn(10, 1, |row, _| column.get(row) == Some(true));
        let mut xbar = OpticalCrossbar::new(10, 1, OpcmParams::ideal_binary());
        xbar.program_matrix(&bits, &mut r).unwrap();
        let tx = Transmitter::with_capacity(8);
        let inputs: Vec<BitVec> = (0..3)
            .map(|k| {
                BitVec::from_bools(&(0..5).map(|i| (i + k) % 2 == 0).collect::<Vec<_>>())
                    .with_complement()
            })
            .collect();
        let frame = tx.encode(&inputs).unwrap();
        let counts = xbar.mmm_counts(&frame, &Receiver::ideal(), &mut r).unwrap();
        for (k, _) in inputs.iter().enumerate() {
            let v = BitVec::from_bools(&(0..5).map(|i| (i + k) % 2 == 0).collect::<Vec<_>>());
            assert_eq!(counts[k][0], ops::xnor_popcount(&v, &w), "input {k}");
        }
    }

    #[test]
    fn full_size_column_reads_exactly() {
        // 256 rows (128-bit chunks + complement) must still read exactly
        // under the high-extinction defaults.
        let mut r = rng();
        let w = BitVec::from_bools(&(0..128).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let column = w.concat(&w.complement());
        let bits = BitMatrix::from_fn(256, 1, |row, _| column.get(row) == Some(true));
        let mut xbar = OpticalCrossbar::new(256, 1, OpcmParams::ideal_binary());
        xbar.program_matrix(&bits, &mut r).unwrap();
        let tx = Transmitter::with_capacity(16);
        let v = BitVec::from_bools(&(0..128).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let frame = tx.encode(&[v.with_complement()]).unwrap();
        let counts = xbar.mmm_counts(&frame, &Receiver::ideal(), &mut r).unwrap();
        assert_eq!(counts[0][0], ops::xnor_popcount(&v, &w));
    }

    #[test]
    fn dimension_and_bounds_errors() {
        let mut r = rng();
        let mut xbar = OpticalCrossbar::new(4, 2, OpcmParams::ideal_binary());
        assert!(xbar.program_bit(4, 0, true, &mut r).is_err());
        let tx = Transmitter::with_capacity(2);
        let frame = tx.encode(&[BitVec::ones(3)]).unwrap();
        assert!(matches!(
            xbar.mmm_counts(&frame, &Receiver::ideal(), &mut r),
            Err(PhotonicsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn noisy_receiver_stays_close() {
        let mut r = rng();
        let bits = BitMatrix::from_fn(32, 1, |a, _| a % 2 == 0);
        let mut xbar = OpticalCrossbar::new(32, 1, OpcmParams::ideal_binary());
        xbar.program_matrix(&bits, &mut r).unwrap();
        let tx = Transmitter::with_capacity(2);
        let frame = tx.encode(&[BitVec::ones(32)]).unwrap();
        let noisy = xbar.mmm_counts(&frame, &Receiver::noisy(), &mut r).unwrap();
        assert!(
            (i64::from(noisy[0][0]) - 16).abs() <= 3,
            "count {}",
            noisy[0][0]
        );
    }
}
