//! WDM channel grids.
//!
//! Wavelength-division multiplexing is the extra parallelism dimension of
//! the oPCM design (paper Section IV-A2): up to `K` input vectors ride on
//! `K` distinct wavelengths through the *same* crossbar simultaneously.
//! The paper takes `K = 16` as the current technology limit
//! (Feldmann et al., Nature 2021).

/// The WDM capacity the paper assumes current technology supports.
pub const PAPER_WDM_CAPACITY: usize = 16;

/// A fixed-spacing WDM channel grid around a C-band centre.
#[derive(Debug, Clone, PartialEq)]
pub struct WdmGrid {
    /// Centre wavelength in nanometres.
    pub center_nm: f64,
    /// Channel spacing in gigahertz.
    pub spacing_ghz: f64,
    /// Number of channels (the WDM capacity `K`).
    pub channels: usize,
}

impl WdmGrid {
    /// A standard 100 GHz-spaced C-band grid with `k` channels.
    ///
    /// # Examples
    ///
    /// ```
    /// use eb_photonics::WdmGrid;
    /// let grid = WdmGrid::c_band(16);
    /// assert_eq!(grid.channels, 16);
    /// assert!(grid.wavelength_nm(0) < grid.wavelength_nm(15));
    /// ```
    pub fn c_band(k: usize) -> Self {
        Self {
            center_nm: 1550.0,
            spacing_ghz: 100.0,
            channels: k,
        }
    }

    /// The paper's configuration: 16 channels.
    pub fn paper_default() -> Self {
        Self::c_band(PAPER_WDM_CAPACITY)
    }

    /// Wavelength of channel `i` in nanometres.
    ///
    /// Channels are spread symmetrically around the centre; frequency
    /// spacing is converted to wavelength spacing at the centre.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.channels`.
    pub fn wavelength_nm(&self, i: usize) -> f64 {
        assert!(i < self.channels, "channel {i} out of range");
        // Δλ ≈ λ²·Δf/c. With λ in nm and Δf in GHz, Δλ_nm = λ_nm²·Δf_GHz/c
        // (c in m/s): the 1e-18 (nm²→m²), 1e9 (GHz→Hz) and 1e9 (m→nm)
        // factors cancel to exactly 1.
        let dlambda_per_ghz = self.center_nm * self.center_nm / 299_792_458.0;
        let offset = i as f64 - (self.channels as f64 - 1.0) / 2.0;
        self.center_nm + offset * self.spacing_ghz * dlambda_per_ghz
    }

    /// Total optical band occupied, in nanometres.
    pub fn span_nm(&self) -> f64 {
        if self.channels < 2 {
            0.0
        } else {
            self.wavelength_nm(self.channels - 1) - self.wavelength_nm(0)
        }
    }
}

impl Default for WdmGrid {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_16_channels() {
        let g = WdmGrid::paper_default();
        assert_eq!(g.channels, PAPER_WDM_CAPACITY);
        assert!((g.center_nm - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn channels_are_monotonic_and_centred() {
        let g = WdmGrid::c_band(8);
        let lams: Vec<f64> = (0..8).map(|i| g.wavelength_nm(i)).collect();
        for w in lams.windows(2) {
            assert!(w[1] > w[0]);
        }
        let mid = (lams[3] + lams[4]) / 2.0;
        assert!((mid - 1550.0).abs() < 1e-6);
    }

    #[test]
    fn spacing_is_about_0_8_nm_at_100ghz() {
        // 100 GHz at 1550 nm is the classic 0.8 nm DWDM spacing.
        let g = WdmGrid::c_band(2);
        let d = g.wavelength_nm(1) - g.wavelength_nm(0);
        assert!((d - 0.8).abs() < 0.01, "spacing {d} nm");
    }

    #[test]
    fn span_scales_with_channels() {
        assert_eq!(WdmGrid::c_band(1).span_nm(), 0.0);
        let s16 = WdmGrid::c_band(16).span_nm();
        let s8 = WdmGrid::c_band(8).span_nm();
        assert!(s16 > s8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_bounds_checked() {
        let _ = WdmGrid::c_band(4).wavelength_nm(4);
    }
}
