//! The EinsteinBarrier transmitter (paper Fig. 6): a CW laser pumps a
//! microresonator frequency comb; a DMUX feeds each comb line to a
//! variable optical attenuator (VOA) that amplitude-encodes one input
//! vector element; a MUX recombines all wavelengths onto the crossbar
//! input waveguides.
//!
//! [`Transmitter::encode`] turns up to `K` binary input vectors into a
//! [`WdmFrame`]: per-wavelength, per-row optical powers.

use crate::error::PhotonicsError;
use crate::wavelength::WdmGrid;
use eb_bitnn::BitVec;

/// A continuous-wave pump laser.
#[derive(Debug, Clone, PartialEq)]
pub struct Laser {
    /// Optical output power in milliwatts.
    pub power_mw: f64,
    /// Pump wavelength in nanometres.
    pub wavelength_nm: f64,
}

impl Laser {
    /// A 10 mW C-band pump (paper-class assumption).
    pub fn default_pump() -> Self {
        Self {
            power_mw: 10.0,
            wavelength_nm: 1550.0,
        }
    }
}

/// A microresonator-based Kerr frequency comb exciting `lines` new
/// wavelengths from the pump (paper Fig. 6 component 2).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroresonatorComb {
    /// Number of comb lines generated (≥ the WDM capacity used).
    pub lines: usize,
    /// Pump-to-comb conversion efficiency in `(0, 1]`.
    pub conversion_efficiency: f64,
}

impl MicroresonatorComb {
    /// A comb with `lines` lines at 30% conversion efficiency.
    pub fn new(lines: usize) -> Self {
        Self {
            lines,
            conversion_efficiency: 0.3,
        }
    }

    /// Optical power per comb line for a given pump, in milliwatts.
    pub fn line_power_mw(&self, laser: &Laser) -> f64 {
        laser.power_mw * self.conversion_efficiency / self.lines as f64
    }
}

/// A variable optical attenuator encoding one bit by amplitude
/// (paper Fig. 6 component 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Voa {
    /// Insertion loss when passing (dB).
    pub insertion_loss_db: f64,
    /// Extinction when blocking (dB) — bit 0 leaks `10^(-ext/10)`.
    pub extinction_db: f64,
}

impl Voa {
    /// A high-extinction VOA (40 dB) with 1 dB insertion loss, enough for
    /// exact binary readout on 256-row crossbars.
    pub fn high_extinction() -> Self {
        Self {
            insertion_loss_db: 1.0,
            extinction_db: 40.0,
        }
    }

    /// Output power for an input power and bit.
    pub fn encode_mw(&self, input_mw: f64, bit: bool) -> f64 {
        let pass = input_mw * 10f64.powf(-self.insertion_loss_db / 10.0);
        if bit {
            pass
        } else {
            pass * 10f64.powf(-self.extinction_db / 10.0)
        }
    }
}

/// A (de)multiplexer with per-pass insertion loss (paper Fig. 6
/// component 3). Used twice: DMUX before the VOAs, MUX after.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxDemux {
    /// Insertion loss per traversal (dB).
    pub insertion_loss_db: f64,
}

impl MuxDemux {
    /// A 0.5 dB arrayed-waveguide-grating-class device.
    pub fn awg() -> Self {
        Self {
            insertion_loss_db: 0.5,
        }
    }

    /// Power after one traversal.
    pub fn pass_mw(&self, input_mw: f64) -> f64 {
        input_mw * 10f64.powf(-self.insertion_loss_db / 10.0)
    }
}

/// One WDM-encoded input frame: `power_mw[k][r]` is the optical power of
/// wavelength `k` on crossbar row `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct WdmFrame {
    powers: Vec<Vec<f64>>,
    on_power_mw: f64,
    /// Number of bit-1 rows per wavelength (used for offset-calibrated
    /// readout in the receiver).
    active_rows: Vec<usize>,
}

impl WdmFrame {
    /// Per-wavelength, per-row powers (mW).
    pub fn powers(&self) -> &[Vec<f64>] {
        &self.powers
    }

    /// Number of wavelengths carried.
    pub fn wavelengths(&self) -> usize {
        self.powers.len()
    }

    /// Rows driven per wavelength.
    pub fn rows(&self) -> usize {
        self.powers.first().map_or(0, Vec::len)
    }

    /// Nominal on-state power (mW) after all transmitter losses.
    pub fn on_power_mw(&self) -> f64 {
        self.on_power_mw
    }

    /// Bit-1 row count for wavelength `k`.
    pub fn active_rows(&self, k: usize) -> usize {
        self.active_rows[k]
    }
}

/// The full transmitter chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmitter {
    /// Pump laser.
    pub laser: Laser,
    /// Frequency comb.
    pub comb: MicroresonatorComb,
    /// Channel grid (defines the WDM capacity `K`).
    pub grid: WdmGrid,
    /// Demultiplexer feeding the VOAs.
    pub dmux: MuxDemux,
    /// Per-channel encoder.
    pub voa: Voa,
    /// Multiplexer recombining channels.
    pub mux: MuxDemux,
}

impl Transmitter {
    /// A paper-default transmitter with WDM capacity `k`.
    pub fn with_capacity(k: usize) -> Self {
        Self {
            laser: Laser::default_pump(),
            comb: MicroresonatorComb::new(k),
            grid: WdmGrid::c_band(k),
            dmux: MuxDemux::awg(),
            voa: Voa::high_extinction(),
            mux: MuxDemux::awg(),
        }
    }

    /// WDM capacity `K`.
    pub fn capacity(&self) -> usize {
        self.grid.channels
    }

    /// On-state row power after comb, DMUX, VOA and MUX losses (mW).
    pub fn on_power_mw(&self) -> f64 {
        let line = self.comb.line_power_mw(&self.laser);
        self.mux
            .pass_mw(self.voa.encode_mw(self.dmux.pass_mw(line), true))
    }

    /// Encodes up to `K` equal-length binary vectors into a WDM frame.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::WdmOverCapacity`] when more than `K`
    /// vectors are supplied and [`PhotonicsError::DimensionMismatch`] when
    /// the vectors have unequal lengths.
    pub fn encode(&self, vectors: &[BitVec]) -> Result<WdmFrame, PhotonicsError> {
        if vectors.len() > self.capacity() {
            return Err(PhotonicsError::WdmOverCapacity {
                requested: vectors.len(),
                capacity: self.capacity(),
            });
        }
        let rows = vectors.first().map_or(0, BitVec::len);
        let line = self.comb.line_power_mw(&self.laser);
        let mut powers = Vec::with_capacity(vectors.len());
        let mut active = Vec::with_capacity(vectors.len());
        for v in vectors {
            if v.len() != rows {
                return Err(PhotonicsError::DimensionMismatch {
                    what: "input vector",
                    expected: rows,
                    got: v.len(),
                });
            }
            let row_powers: Vec<f64> = (0..rows)
                .map(|r| {
                    let bit = v.get(r) == Some(true);
                    self.mux
                        .pass_mw(self.voa.encode_mw(self.dmux.pass_mw(line), bit))
                })
                .collect();
            active.push(v.popcount() as usize);
            powers.push(row_powers);
        }
        Ok(WdmFrame {
            powers,
            on_power_mw: self.on_power_mw(),
            active_rows: active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voa_extinction_suppresses_zero_bits() {
        let v = Voa::high_extinction();
        let on = v.encode_mw(1.0, true);
        let off = v.encode_mw(1.0, false);
        assert!(on / off > 9000.0, "extinction ratio {}", on / off);
    }

    #[test]
    fn comb_splits_pump_power() {
        let laser = Laser::default_pump();
        let comb = MicroresonatorComb::new(16);
        let line = comb.line_power_mw(&laser);
        assert!((line - 10.0 * 0.3 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn encode_maps_bits_to_powers() {
        let tx = Transmitter::with_capacity(4);
        let v = BitVec::from_bools(&[true, false, true]);
        let frame = tx.encode(std::slice::from_ref(&v)).unwrap();
        assert_eq!(frame.wavelengths(), 1);
        assert_eq!(frame.rows(), 3);
        let p = &frame.powers()[0];
        assert!(p[0] > 1000.0 * p[1]);
        assert!((p[0] - frame.on_power_mw()).abs() < 1e-12);
        assert_eq!(frame.active_rows(0), 2);
    }

    #[test]
    fn encode_rejects_over_capacity() {
        let tx = Transmitter::with_capacity(2);
        let vs = vec![BitVec::ones(4), BitVec::ones(4), BitVec::ones(4)];
        assert!(matches!(
            tx.encode(&vs),
            Err(PhotonicsError::WdmOverCapacity { .. })
        ));
    }

    #[test]
    fn encode_rejects_ragged_vectors() {
        let tx = Transmitter::with_capacity(2);
        let vs = vec![BitVec::ones(4), BitVec::ones(5)];
        assert!(matches!(
            tx.encode(&vs),
            Err(PhotonicsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn losses_compound_through_chain() {
        let tx = Transmitter::with_capacity(8);
        let line = tx.comb.line_power_mw(&tx.laser);
        // 0.5 dB + 1 dB + 0.5 dB = 2 dB total insertion loss.
        let expect = line * 10f64.powf(-2.0 / 10.0);
        assert!((tx.on_power_mw() - expect).abs() < 1e-12);
    }
}
