//! Error types for the photonics substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by photonic components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// More vectors offered than the WDM capacity supports.
    WdmOverCapacity {
        /// Vectors requested.
        requested: usize,
        /// Transmitter capacity `K`.
        capacity: usize,
    },
    /// An operand had the wrong length.
    DimensionMismatch {
        /// What operand mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// A device access exceeded the crossbar.
    OutOfBounds {
        /// Requested row extent.
        row: usize,
        /// Requested column extent.
        col: usize,
        /// Physical rows.
        rows: usize,
        /// Physical columns.
        cols: usize,
    },
    /// A programming level outside the device's level count.
    InvalidLevel {
        /// Requested level.
        level: usize,
        /// Available levels.
        levels: usize,
    },
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WdmOverCapacity {
                requested,
                capacity,
            } => write!(
                f,
                "{requested} input vectors exceed the WDM capacity of {capacity}"
            ),
            Self::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} has length {got}, expected {expected}"),
            Self::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "access at ({row}, {col}) exceeds {rows}×{cols} crossbar"),
            Self::InvalidLevel { level, levels } => {
                write!(f, "level {level} out of range for a {levels}-level device")
            }
        }
    }
}

impl Error for PhotonicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PhotonicsError::WdmOverCapacity {
            requested: 20,
            capacity: 16,
        };
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync>() {}
        check::<PhotonicsError>();
    }
}
