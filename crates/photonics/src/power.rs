//! The paper's oPCM power model (Section IV-B, Eq. 2 and Eq. 3) and the
//! duty-cycled energy integration.
//!
//! Eq. 2 charges `N × 2 mW` of TIA power for a crossbar with `N` output
//! columns. Eq. 3 charges the transmitter:
//!
//! ```text
//! P_total = P_laser + 3·K·M mW + 3·(K·M + 1)/K · 45 mW
//! ```
//!
//! for WDM capacity `K` and `M` crossbar rows (modulator drive plus
//! comb/ring tuning).
//!
//! **Calibration note (see DESIGN.md):** applied literally over a ~100 ns
//! electronic-class step, these powers would make EinsteinBarrier far
//! *worse* in energy than Baseline-ePCM, contradicting the paper's own
//! Fig. 8. The only consistent reading is that the optical chain is active
//! for the optical symbol time of each step (~0.05 ns at a 20 GHz line rate),
//! while the quoted powers are peak powers. [`OpticalCost::step_energy_j`]
//! therefore integrates `P_total` over [`OpticalTimings::t_symbol_ns`],
//! not over the whole (ADC-bound) step.

/// Static TIA power per crossbar output column, in milliwatts (Eq. 2).
pub const TIA_POWER_MW: f64 = 2.0;

/// Eq. 2: total TIA (receiver) power of a crossbar with `n_cols` outputs,
/// in milliwatts.
///
/// # Examples
///
/// ```
/// use eb_photonics::power::crossbar_receiver_power_mw;
/// assert_eq!(crossbar_receiver_power_mw(256), 512.0);
/// ```
pub fn crossbar_receiver_power_mw(n_cols: usize) -> f64 {
    n_cols as f64 * TIA_POWER_MW
}

/// The transmitter power model of Eq. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmitterPowerModel {
    /// Pump laser power in milliwatts.
    pub p_laser_mw: f64,
    /// Modulator drive coefficient (the `3 mW` per wavelength-row term).
    pub per_modulator_mw: f64,
    /// Tuning power unit (the `45 mW` term).
    pub tuning_unit_mw: f64,
}

impl TransmitterPowerModel {
    /// The paper's coefficients with a 10 mW pump.
    pub fn paper_default() -> Self {
        Self {
            p_laser_mw: 10.0,
            per_modulator_mw: 3.0,
            tuning_unit_mw: 45.0,
        }
    }

    /// Eq. 3 evaluated verbatim: total transmitter power in milliwatts for
    /// WDM capacity `k` and `m` crossbar rows.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn total_mw(&self, k: usize, m: usize) -> f64 {
        assert!(k > 0, "WDM capacity must be positive");
        let km = (k * m) as f64;
        self.p_laser_mw
            + self.per_modulator_mw * km
            + 3.0 * (km + 1.0) / k as f64 * self.tuning_unit_mw
    }

    /// The modulator term alone (mW).
    pub fn modulators_mw(&self, k: usize, m: usize) -> f64 {
        self.per_modulator_mw * (k * m) as f64
    }

    /// The tuning term alone (mW).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn tuning_mw(&self, k: usize, m: usize) -> f64 {
        assert!(k > 0, "WDM capacity must be positive");
        3.0 * ((k * m) as f64 + 1.0) / k as f64 * self.tuning_unit_mw
    }
}

impl Default for TransmitterPowerModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Latency constants of the optical crossbar path, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalTimings {
    /// Optical settle of an oPCM crossbar read (fast compared to ePCM).
    pub t_settle_ns: f64,
    /// One optical symbol at the modulation line rate (20 GHz ⇒ 0.05 ns).
    pub t_symbol_ns: f64,
    /// One oPCM program pulse.
    pub t_write_ns: f64,
}

impl Default for OpticalTimings {
    fn default() -> Self {
        Self {
            t_settle_ns: 1.0,
            t_symbol_ns: 0.05, // 20 GHz line rate
            t_write_ns: 50.0,
        }
    }
}

/// Combined optical cost model: peak powers duty-cycled over symbol time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpticalCost {
    /// Transmitter power model (Eq. 3).
    pub transmitter: TransmitterPowerModel,
    /// Timing constants.
    pub timings: OpticalTimings,
}

impl OpticalCost {
    /// Peak optical-path power (mW) of one MMM step on a `m × n` crossbar
    /// with WDM capacity `k`: Eq. 3 (transmitter) + Eq. 2 (receiver).
    pub fn step_power_mw(&self, k: usize, m: usize, n_cols: usize) -> f64 {
        self.transmitter.total_mw(k, m) + crossbar_receiver_power_mw(n_cols)
    }

    /// Energy (joules) of the optical portion of one MMM step: peak power
    /// integrated over the optical symbol time.
    pub fn step_energy_j(&self, k: usize, m: usize, n_cols: usize) -> f64 {
        self.step_power_mw(k, m, n_cols) * 1e-3 * self.timings.t_symbol_ns * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_paper_form() {
        assert_eq!(crossbar_receiver_power_mw(1), 2.0);
        assert_eq!(crossbar_receiver_power_mw(128), 256.0);
    }

    #[test]
    fn eq3_verbatim_evaluation() {
        let m = TransmitterPowerModel::paper_default();
        // K=16, M=256: P = 10 + 3*4096 + 3*4097/16*45
        let want = 10.0 + 3.0 * 4096.0 + 3.0 * 4097.0 / 16.0 * 45.0;
        assert!((m.total_mw(16, 256) - want).abs() < 1e-9);
        assert!((m.modulators_mw(16, 256) - 12288.0).abs() < 1e-9);
        assert!(
            (m.total_mw(16, 256)
                - (m.p_laser_mw + m.modulators_mw(16, 256) + m.tuning_mw(16, 256)))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn eq3_scales_with_k_and_m() {
        let m = TransmitterPowerModel::paper_default();
        assert!(m.total_mw(16, 256) > m.total_mw(8, 256));
        assert!(m.total_mw(16, 256) > m.total_mw(16, 128));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = TransmitterPowerModel::paper_default().total_mw(0, 256);
    }

    #[test]
    fn duty_cycled_energy_is_small() {
        // The calibration requirement: one optical step's energy must be
        // comparable to (not orders above) the electronic ADC energy of a
        // step (~256 × 2 pJ ≈ 0.5 nJ), otherwise Fig. 8 cannot hold.
        let c = OpticalCost::default();
        let e = c.step_energy_j(16, 256, 256);
        assert!(e < 10e-9, "optical step energy {e} J too large");
        assert!(e > 0.1e-9, "optical step energy {e} J suspiciously small");
    }

    #[test]
    fn step_power_includes_both_equations() {
        let c = OpticalCost::default();
        let p = c.step_power_mw(16, 256, 256);
        assert!((p - (c.transmitter.total_mw(16, 256) + 512.0)).abs() < 1e-9);
    }
}
