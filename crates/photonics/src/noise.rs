//! Optical receiver noise models: shot, thermal and relative intensity
//! noise. These bound the usable WDM capacity and the number of PCM
//! levels (the paper's Section II-C robustness argument).

use rand::Rng;

/// Elementary charge (C).
pub const Q_ELECTRON: f64 = 1.602_176_634e-19;
/// Boltzmann constant (J/K).
pub const K_BOLTZMANN: f64 = 1.380_649e-23;

/// Standard normal sample via Box–Muller.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// RMS shot-noise current (A) for photocurrent `i_photo` (A) over
/// bandwidth `bw_hz`: `√(2·q·I·B)`.
pub fn shot_noise_sigma(i_photo: f64, bw_hz: f64) -> f64 {
    (2.0 * Q_ELECTRON * i_photo.max(0.0) * bw_hz).sqrt()
}

/// RMS thermal (Johnson) noise current (A) of load `r_ohm` at `temp_k`
/// over bandwidth `bw_hz`: `√(4·k·T·B/R)`.
pub fn thermal_noise_sigma(temp_k: f64, r_ohm: f64, bw_hz: f64) -> f64 {
    (4.0 * K_BOLTZMANN * temp_k * bw_hz / r_ohm).sqrt()
}

/// RMS relative-intensity-noise current (A): `I·10^(RIN_dB/20)·√B`
/// with RIN specified per Hz.
pub fn rin_noise_sigma(i_photo: f64, rin_db_hz: f64, bw_hz: f64) -> f64 {
    i_photo.max(0.0) * 10f64.powf(rin_db_hz / 20.0) * bw_hz.sqrt()
}

/// Aggregate RMS noise current combining the three mechanisms in
/// quadrature.
pub fn total_noise_sigma(i_photo: f64, bw_hz: f64, temp_k: f64, r_ohm: f64, rin_db_hz: f64) -> f64 {
    let s = shot_noise_sigma(i_photo, bw_hz);
    let t = thermal_noise_sigma(temp_k, r_ohm, bw_hz);
    let r = rin_noise_sigma(i_photo, rin_db_hz, bw_hz);
    (s * s + t * t + r * r).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let a = shot_noise_sigma(1e-6, 1e9);
        let b = shot_noise_sigma(4e-6, 1e9);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert_eq!(shot_noise_sigma(-1.0, 1e9), 0.0);
    }

    #[test]
    fn thermal_noise_at_room_temperature_is_plausible() {
        // 50 Ω load, 10 GHz: tens of µA-class RMS — sanity-check the order.
        let s = thermal_noise_sigma(300.0, 50.0, 10e9);
        assert!(s > 1e-7 && s < 1e-4, "σ_thermal = {s}");
    }

    #[test]
    fn noise_grows_with_bandwidth() {
        // The paper's point (via Cardoso et al.): higher operating frequency
        // ⇒ more noise ⇒ fewer usable levels.
        let low = total_noise_sigma(10e-6, 1e9, 300.0, 1e4, -140.0);
        let high = total_noise_sigma(10e-6, 25e9, 300.0, 1e4, -140.0);
        assert!(high > 2.0 * low);
    }

    #[test]
    fn quadrature_combination_bounds() {
        let s = shot_noise_sigma(5e-6, 5e9);
        let t = thermal_noise_sigma(300.0, 1e4, 5e9);
        let r = rin_noise_sigma(5e-6, -145.0, 5e9);
        let tot = total_noise_sigma(5e-6, 5e9, 300.0, 1e4, -145.0);
        assert!(tot >= s.max(t).max(r));
        assert!(tot <= s + t + r);
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut r = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..20000).map(|_| gaussian(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
