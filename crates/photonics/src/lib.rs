//! # eb-photonics — Integrated-photonics substrate
//!
//! The optical half of EinsteinBarrier (paper Section IV):
//!
//! * [`WdmGrid`] — wavelength-division-multiplexing channel grids
//!   (capacity `K = 16` by default, as the paper assumes).
//! * [`OpcmParams`]/[`OpcmDevice`] — optical PCM devices in binary (or,
//!   for the robustness study, multi-level) transmission mode.
//! * [`Transmitter`] — the Fig. 6 chain: CW laser → microresonator comb →
//!   DMUX → VOAs → MUX, encoding up to `K` input vectors into one
//!   [`WdmFrame`].
//! * [`Receiver`] — photodetector + TIA with shot/thermal/RIN noise.
//! * [`OpticalCrossbar`] — the oPCM grid computing WDM-parallel MMMs.
//! * [`power`] — Eq. 2 and Eq. 3 implemented verbatim, plus the
//!   duty-cycled energy integration documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod noise;
mod ocrossbar;
mod opcm;
pub mod power;
mod receiver;
mod transmitter;
mod wavelength;

pub use error::PhotonicsError;
pub use ocrossbar::OpticalCrossbar;
pub use opcm::{OpcmDevice, OpcmParams};
pub use power::{OpticalCost, OpticalTimings, TransmitterPowerModel, TIA_POWER_MW};
pub use receiver::{Photodetector, Receiver, Tia};
pub use transmitter::{Laser, MicroresonatorComb, MuxDemux, Transmitter, Voa, WdmFrame};
pub use wavelength::{WdmGrid, PAPER_WDM_CAPACITY};
