//! The receiver chain: photodetector + transimpedance amplifier (TIA).
//!
//! EinsteinBarrier adds TIAs on every crossbar output to feed the ADCs,
//! "acting as a deserialization stage" (paper Section IV-A1). Each TIA
//! consumes 2 mW (the `N × 2 mW` of Eq. 2 — see [`crate::power`]).

use crate::noise;
use rand::Rng;

/// A PIN photodetector.
#[derive(Debug, Clone, PartialEq)]
pub struct Photodetector {
    /// Responsivity in A/W.
    pub responsivity: f64,
    /// Dark current in amps.
    pub dark_current_a: f64,
}

impl Photodetector {
    /// A 0.8 A/W detector with negligible dark current.
    pub fn pin() -> Self {
        Self {
            responsivity: 0.8,
            dark_current_a: 1e-9,
        }
    }

    /// Photocurrent (A) for incident optical power in milliwatts.
    pub fn photocurrent_a(&self, power_mw: f64) -> f64 {
        self.responsivity * power_mw * 1e-3 + self.dark_current_a
    }
}

/// A transimpedance amplifier converting photocurrent to voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct Tia {
    /// Transimpedance gain in ohms.
    pub gain_ohm: f64,
    /// Electrical bandwidth in hertz (sets the noise floor).
    pub bandwidth_hz: f64,
    /// Static power draw in milliwatts (Eq. 2 charges 2 mW per TIA).
    pub power_mw: f64,
    /// Operating temperature in kelvin.
    pub temp_k: f64,
    /// Laser relative intensity noise in dB/Hz.
    pub rin_db_hz: f64,
}

impl Tia {
    /// The paper's TIA: 2 mW, 10 GHz class.
    pub fn paper_default() -> Self {
        Self {
            gain_ohm: 10e3,
            bandwidth_hz: 10e9,
            power_mw: 2.0,
            temp_k: 300.0,
            rin_db_hz: -150.0,
        }
    }

    /// Output voltage for a photocurrent, with receiver noise applied.
    pub fn amplify(&self, i_photo_a: f64, rng: &mut impl Rng) -> f64 {
        let sigma = noise::total_noise_sigma(
            i_photo_a,
            self.bandwidth_hz,
            self.temp_k,
            self.gain_ohm,
            self.rin_db_hz,
        );
        (i_photo_a + noise::gaussian(rng) * sigma) * self.gain_ohm
    }

    /// Output voltage without noise (ideal reference).
    pub fn amplify_ideal(&self, i_photo_a: f64) -> f64 {
        i_photo_a * self.gain_ohm
    }
}

impl Default for Tia {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A complete receiver lane: detector + TIA.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Receiver {
    /// Photodetector stage.
    pub detector: Photodetector,
    /// Amplifier stage.
    pub tia: Tia,
    /// When `true`, receiver noise is disabled (golden functional mode).
    pub noiseless: bool,
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::pin()
    }
}

impl Receiver {
    /// A noiseless receiver for functional (bit-exact) simulation.
    pub fn ideal() -> Self {
        Self {
            detector: Photodetector::pin(),
            tia: Tia::paper_default(),
            noiseless: true,
        }
    }

    /// A noisy receiver with the paper-default TIA.
    pub fn noisy() -> Self {
        Self {
            noiseless: false,
            ..Self::ideal()
        }
    }

    /// Receives optical power (mW) and returns the TIA output voltage.
    pub fn receive_mw(&self, power_mw: f64, rng: &mut impl Rng) -> f64 {
        let i = self.detector.photocurrent_a(power_mw);
        if self.noiseless {
            self.tia.amplify_ideal(i)
        } else {
            self.tia.amplify(i, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn photocurrent_linear_in_power() {
        let d = Photodetector::pin();
        let i1 = d.photocurrent_a(1.0);
        let i2 = d.photocurrent_a(2.0);
        assert!(((i2 - d.dark_current_a) / (i1 - d.dark_current_a) - 2.0).abs() < 1e-9);
        assert!((i1 - (0.8e-3 + 1e-9)).abs() < 1e-12);
    }

    #[test]
    fn ideal_receiver_is_deterministic() {
        let r = Receiver::ideal();
        let mut g = rng();
        let a = r.receive_mw(0.5, &mut g);
        let b = r.receive_mw(0.5, &mut g);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn noisy_receiver_fluctuates_around_ideal() {
        let ideal = Receiver::ideal();
        let noisy = Receiver::noisy();
        let mut g = rng();
        let truth = ideal.receive_mw(0.2, &mut g);
        let reads: Vec<f64> = (0..500).map(|_| noisy.receive_mw(0.2, &mut g)).collect();
        let mean = reads.iter().sum::<f64>() / reads.len() as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs truth {truth}"
        );
        assert!(reads.iter().any(|&v| (v - truth).abs() > 0.0));
    }

    #[test]
    fn paper_tia_draws_2mw() {
        assert_eq!(Tia::paper_default().power_mw, 2.0);
    }
}
