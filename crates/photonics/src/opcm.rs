//! Optical phase-change memory (oPCM) device model.
//!
//! A GST-on-waveguide patch attenuates passing light according to its
//! phase state: crystalline absorbs (low transmission), amorphous is
//! transparent (high transmission). Used in *binary* mode — the paper's
//! key robustness argument (Section II-C, citing Cardoso et al. DATE'23):
//! with realistic noise, multi-level operation degrades accuracy, while
//! two well-separated levels remain robust.

use crate::error::PhotonicsError;
use rand::Rng;

/// Optical and non-ideality parameters of an oPCM device.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcmParams {
    /// Transmission of the fully amorphous (bit 1) state, in `[0, 1]`.
    pub t_high: f64,
    /// Transmission of the fully crystalline (bit 0) state, in `[0, 1]`.
    pub t_low: f64,
    /// Number of programmable levels (2 = binary, the paper's choice).
    pub levels: usize,
    /// Gaussian programming error σ on the transmission (absolute).
    pub write_sigma: f64,
}

impl OpcmParams {
    /// Ideal binary device with high extinction (~25 dB), as required for
    /// exact binary readout.
    pub fn ideal_binary() -> Self {
        Self {
            t_high: 0.6,
            t_low: 0.002,
            levels: 2,
            write_sigma: 0.0,
        }
    }

    /// A realistic device with the given number of levels and programming
    /// noise — used by the multi-level robustness experiment (DESIGN.md E8).
    pub fn with_levels(levels: usize, write_sigma: f64) -> Self {
        Self {
            levels,
            write_sigma,
            ..Self::ideal_binary()
        }
    }

    /// Extinction ratio in dB.
    pub fn extinction_db(&self) -> f64 {
        10.0 * (self.t_high / self.t_low).log10()
    }

    /// Nominal transmission of level `l` out of `self.levels` (linearly
    /// interpolated between `t_low` and `t_high`).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.levels`.
    pub fn level_transmission(&self, l: usize) -> f64 {
        assert!(l < self.levels, "level {l} out of range");
        if self.levels == 1 {
            return self.t_high;
        }
        self.t_low + (self.t_high - self.t_low) * l as f64 / (self.levels - 1) as f64
    }
}

impl Default for OpcmParams {
    fn default() -> Self {
        Self::ideal_binary()
    }
}

/// One programmed oPCM device.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcmDevice {
    level: usize,
    transmission: f64,
}

impl OpcmDevice {
    /// Programs a binary bit (level 0 or `levels-1`).
    pub fn program_bit(bit: bool, params: &OpcmParams, rng: &mut impl Rng) -> Self {
        let level = if bit { params.levels - 1 } else { 0 };
        Self::program_level(level, params, rng).expect("level derived from params is valid")
    }

    /// Programs an arbitrary level.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidLevel`] if `level >= params.levels`.
    pub fn program_level(
        level: usize,
        params: &OpcmParams,
        rng: &mut impl Rng,
    ) -> Result<Self, PhotonicsError> {
        if level >= params.levels {
            return Err(PhotonicsError::InvalidLevel {
                level,
                levels: params.levels,
            });
        }
        let nominal = params.level_transmission(level);
        let transmission = if params.write_sigma > 0.0 {
            (nominal + crate::noise::gaussian(rng) * params.write_sigma).clamp(0.0, 1.0)
        } else {
            nominal
        };
        Ok(Self {
            level,
            transmission,
        })
    }

    /// Rebuilds a device from serialized state: the programmed level and
    /// the exact post-noise transmission a previous
    /// [`OpcmDevice::program_level`] produced. Restoring is not a
    /// re-program — no RNG draw happens and no write is counted.
    pub fn from_parts(level: usize, transmission: f64) -> Self {
        Self {
            level,
            transmission,
        }
    }

    /// Programmed level index.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Stored bit for binary devices (level > 0 reads as 1).
    pub fn stored_bit(&self) -> bool {
        self.level > 0
    }

    /// Optical power transmission factor of the device.
    pub fn transmission(&self) -> f64 {
        self.transmission
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2)
    }

    #[test]
    fn binary_levels_are_extremes() {
        let p = OpcmParams::ideal_binary();
        let mut r = rng();
        let d1 = OpcmDevice::program_bit(true, &p, &mut r);
        let d0 = OpcmDevice::program_bit(false, &p, &mut r);
        assert_eq!(d1.transmission(), p.t_high);
        assert_eq!(d0.transmission(), p.t_low);
        assert!(d1.stored_bit());
        assert!(!d0.stored_bit());
    }

    #[test]
    fn extinction_is_high_for_ideal() {
        assert!(OpcmParams::ideal_binary().extinction_db() > 20.0);
    }

    #[test]
    fn multilevel_interpolates() {
        let p = OpcmParams::with_levels(4, 0.0);
        let t: Vec<f64> = (0..4).map(|l| p.level_transmission(l)).collect();
        assert_eq!(t[0], p.t_low);
        assert_eq!(t[3], p.t_high);
        assert!(t[1] < t[2]);
        // Evenly spaced.
        assert!(((t[2] - t[1]) - (t[1] - t[0])).abs() < 1e-12);
    }

    #[test]
    fn invalid_level_rejected() {
        let p = OpcmParams::with_levels(4, 0.0);
        let mut r = rng();
        assert!(matches!(
            OpcmDevice::program_level(4, &p, &mut r),
            Err(PhotonicsError::InvalidLevel { .. })
        ));
    }

    #[test]
    fn write_noise_blurs_levels() {
        // The Cardoso et al. observation: with programming noise, adjacent
        // multi-level states overlap while binary states stay separated.
        let sigma = 0.05;
        let p8 = OpcmParams::with_levels(8, sigma);
        let p2 = OpcmParams::with_levels(2, sigma);
        let mut r = rng();
        let mut overlap8 = 0;
        for _ in 0..300 {
            let a = OpcmDevice::program_level(3, &p8, &mut r).unwrap();
            let b = OpcmDevice::program_level(4, &p8, &mut r).unwrap();
            if a.transmission() >= b.transmission() {
                overlap8 += 1;
            }
        }
        let mut overlap2 = 0;
        for _ in 0..300 {
            let a = OpcmDevice::program_level(0, &p2, &mut r).unwrap();
            let b = OpcmDevice::program_level(1, &p2, &mut r).unwrap();
            if a.transmission() >= b.transmission() {
                overlap2 += 1;
            }
        }
        assert!(
            overlap8 > 30,
            "8-level neighbours should overlap: {overlap8}"
        );
        assert_eq!(overlap2, 0, "binary states must stay separable");
    }

    #[test]
    fn transmission_clamped_to_physical_range() {
        let p = OpcmParams {
            write_sigma: 1.0,
            ..OpcmParams::ideal_binary()
        };
        let mut r = rng();
        for _ in 0..100 {
            let d = OpcmDevice::program_bit(true, &p, &mut r);
            assert!((0.0..=1.0).contains(&d.transmission()));
        }
    }
}
