//! The `.ebm` container: magic header, format version, whole-file
//! checksum, and a typed section table.
//!
//! Byte layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "EBMF"
//! 4       2     format version (currently 1)
//! 6       2     section count
//! 8       8     FNV-1a-64 over bytes [0, 8), then [16, EOF) word-wise + length
//! 16      22·n  section table: n × { id: u16, offset: u64, len: u64, crc32: u32 }
//! ...           section payloads (pointed to by the table)
//! ```
//!
//! The file checksum covers every byte except its own storage, so any
//! single-bit corruption anywhere in the file is guaranteed to surface as
//! a typed error. Per-section CRC-32 values localize the damage (and are
//! validated even for section ids this reader does not understand).
//!
//! Versioning policy: a reader accepts exactly the major versions it
//! knows (currently 1) and rejects anything newer with
//! [`ArtifactError::UnsupportedVersion`]. *Within* a version, unknown
//! section ids are checksummed and skipped, which is the forward-compat
//! channel: future writers may add sections without breaking v1 readers.

use crate::error::ArtifactError;
use crate::wire::{crc32, fnv1a64, fnv1a64_words};

/// The four magic bytes opening every artifact.
pub const MAGIC: [u8; 4] = *b"EBMF";

/// Newest container version this crate reads and the version it writes.
pub const FORMAT_VERSION: u16 = 1;

/// Section id of the mandatory serialized-network section.
pub const SECTION_MODEL: u16 = 1;

/// Section id of the optional prepared-backend-state section.
pub const SECTION_PREPARED: u16 = 2;

/// Upper bound on the section count a reader will accept; far above any
/// legitimate artifact, low enough that a corrupt count cannot drive a
/// large table allocation.
const MAX_SECTIONS: usize = 64;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 22;

/// One decoded section-table entry with its (CRC-verified) payload.
#[derive(Debug)]
pub(crate) struct RawSection<'a> {
    pub id: u16,
    pub offset: u64,
    pub len: u64,
    pub crc: u32,
    pub payload: &'a [u8],
}

/// Human-readable name for a section id.
pub(crate) fn section_name(id: u16) -> &'static str {
    match id {
        SECTION_MODEL => "model",
        SECTION_PREPARED => "prepared-state",
        _ => "unknown",
    }
}

/// Assembles a container from `(id, payload)` pairs, filling in the
/// section table and both checksum layers.
pub(crate) fn encode_container(sections: &[(u16, Vec<u8>)]) -> Vec<u8> {
    assert!(sections.len() <= MAX_SECTIONS, "too many sections");
    let table_len = sections.len() * TABLE_ENTRY_LEN;
    let payload_len: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut buf = Vec::with_capacity(HEADER_LEN + table_len + payload_len);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(sections.len() as u16).to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
    let mut offset = (HEADER_LEN + table_len) as u64;
    for (id, payload) in sections {
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(&offset.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in sections {
        buf.extend_from_slice(payload);
    }
    let checksum = file_checksum(&buf);
    buf[8..16].copy_from_slice(&checksum.to_le_bytes());
    buf
}

/// The whole-file FNV-1a-64: every byte except the checksum field
/// itself. The 8-byte prefix is absorbed byte-wise, the body in 64-bit
/// words plus its length (see [`fnv1a64_words`]) — artifacts run to
/// megabytes and this digest is on the cold-start critical path.
fn file_checksum(bytes: &[u8]) -> u64 {
    fnv1a64_words(fnv1a64(&bytes[..8]), &bytes[HEADER_LEN..])
}

/// Validates the header, file checksum, section table, and every
/// section's CRC; returns `(version, file_checksum, sections)`.
pub(crate) fn decode_container(
    bytes: &[u8],
) -> Result<(u16, u64, Vec<RawSection<'_>>), ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated { context: "header" });
    }
    if bytes[..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = u16::from_le_bytes(bytes[6..8].try_into().expect("len 2")) as usize;
    if count > MAX_SECTIONS {
        return Err(ArtifactError::malformed(format!(
            "section count {count} exceeds the maximum of {MAX_SECTIONS}"
        )));
    }
    let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("len 8"));
    let computed = file_checksum(bytes);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch {
            what: "file checksum",
            expected: stored,
            got: computed,
        });
    }
    let table_end = HEADER_LEN + count * TABLE_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(ArtifactError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = u16::from_le_bytes(bytes[e..e + 2].try_into().expect("len 2"));
        let offset = u64::from_le_bytes(bytes[e + 2..e + 10].try_into().expect("len 8"));
        let len = u64::from_le_bytes(bytes[e + 10..e + 18].try_into().expect("len 8"));
        let crc = u32::from_le_bytes(bytes[e + 18..e + 22].try_into().expect("len 4"));
        let end = offset.checked_add(len).ok_or_else(|| {
            ArtifactError::malformed(format!("section {id}: offset + length overflows"))
        })?;
        if offset < table_end as u64 || end > bytes.len() as u64 {
            return Err(ArtifactError::malformed(format!(
                "section {id}: range [{offset}, {end}) escapes the file ({} bytes)",
                bytes.len()
            )));
        }
        let payload = &bytes[offset as usize..end as usize];
        let got = crc32(payload);
        if got != crc {
            return Err(ArtifactError::ChecksumMismatch {
                what: "section checksum",
                expected: u64::from(crc),
                got: u64::from(got),
            });
        }
        sections.push(RawSection {
            id,
            offset,
            len,
            crc,
            payload,
        });
    }
    Ok((version, stored, sections))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_container(&[
            (SECTION_MODEL, vec![1, 2, 3, 4, 5]),
            (SECTION_PREPARED, vec![9, 9]),
        ])
    }

    #[test]
    fn container_round_trips() {
        let buf = sample();
        let (version, checksum, sections) = decode_container(&buf).unwrap();
        assert_eq!(version, FORMAT_VERSION);
        assert_ne!(checksum, 0);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].id, SECTION_MODEL);
        assert_eq!(sections[0].payload, &[1, 2, 3, 4, 5]);
        assert_eq!(sections[1].id, SECTION_PREPARED);
        assert_eq!(sections[1].len, 2);
    }

    #[test]
    fn bad_magic_and_version() {
        let mut buf = sample();
        buf[0] = b'X';
        assert!(matches!(
            decode_container(&buf),
            Err(ArtifactError::BadMagic)
        ));
        let mut buf = sample();
        buf[4] = 99;
        assert!(matches!(
            decode_container(&buf),
            Err(ArtifactError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let golden = sample();
        for byte in 0..golden.len() {
            for bit in 0..8 {
                let mut buf = golden.clone();
                buf[byte] ^= 1 << bit;
                assert!(
                    decode_container(&buf).is_err(),
                    "flip at byte {byte} bit {bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let golden = sample();
        for len in 0..golden.len() {
            assert!(
                decode_container(&golden[..len]).is_err(),
                "truncation to {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn section_escaping_file_rejected() {
        // Hand-build a table entry pointing past EOF, re-sealing the file
        // checksum so only the range check can object.
        let mut buf = sample();
        let len_field = 16 + 10; // first entry's len
        buf[len_field..len_field + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let checksum = file_checksum(&buf);
        buf[8..16].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_container(&buf),
            Err(ArtifactError::Malformed { .. })
        ));
    }
}
