//! The model section: a complete serialized [`Bnn`].
//!
//! The layout mirrors the in-memory network: name, input shape, then the
//! layer stack, with each layer tagged by kind. Binary weight matrices
//! are dumped as their packed little-endian `u64` words, so loading
//! allocates exactly the packed representation with no per-bit work.
//!
//! Every invariant that the `eb-bitnn` constructors enforce by panicking
//! (threshold counts, conv fan-in arithmetic, ragged output rows) is
//! validated here *before* the constructor runs, so corrupt bytes turn
//! into [`ArtifactError::Malformed`] instead of a panic.

use crate::error::ArtifactError;
use crate::wire::{ByteReader, ByteWriter};
use eb_bitnn::{
    BinConv, BinLinear, BitMatrix, Bnn, FixedConv, FixedLinear, Layer, OutputLinear, Shape,
    ThresholdSpec,
};

const SHAPE_FLAT: u8 = 0;
const SHAPE_IMG: u8 = 1;

const LAYER_FIXED_LINEAR: u8 = 0;
const LAYER_FIXED_CONV: u8 = 1;
const LAYER_BIN_LINEAR: u8 = 2;
const LAYER_BIN_CONV: u8 = 3;
const LAYER_MAXPOOL2: u8 = 4;
const LAYER_FLATTEN: u8 = 5;
const LAYER_OUTPUT: u8 = 6;

pub(crate) fn put_shape(w: &mut ByteWriter, shape: Shape) {
    match shape {
        Shape::Flat(n) => {
            w.put_u8(SHAPE_FLAT);
            w.put_usize(n);
        }
        Shape::Img(c, h, wid) => {
            w.put_u8(SHAPE_IMG);
            w.put_usize(c);
            w.put_usize(h);
            w.put_usize(wid);
        }
    }
}

pub(crate) fn get_shape(r: &mut ByteReader<'_>) -> Result<Shape, ArtifactError> {
    match r.u8()? {
        SHAPE_FLAT => Ok(Shape::Flat(r.usize()?)),
        SHAPE_IMG => Ok(Shape::Img(r.usize()?, r.usize()?, r.usize()?)),
        tag => Err(ArtifactError::malformed(format!("shape tag {tag}"))),
    }
}

pub(crate) fn put_bitmatrix(w: &mut ByteWriter, m: &BitMatrix) {
    w.put_u32(m.rows() as u32);
    w.put_u32(m.cols() as u32);
    for r in 0..m.rows() {
        for &word in m.row_words(r) {
            w.put_u64(word);
        }
    }
}

pub(crate) fn get_bitmatrix(r: &mut ByteReader<'_>) -> Result<BitMatrix, ArtifactError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let words = (rows as u64).saturating_mul(cols.div_ceil(64) as u64);
    let claimed_bytes = words.saturating_mul(8);
    if claimed_bytes > r.remaining() as u64 {
        return Err(ArtifactError::Truncated {
            context: "bit matrix words",
        });
    }
    let mut data = Vec::with_capacity(words as usize);
    for _ in 0..words {
        data.push(r.u64()?);
    }
    BitMatrix::from_words(rows, cols, data).ok_or_else(|| {
        ArtifactError::malformed(format!(
            "bit matrix {rows}×{cols}: bad word count or set padding bits"
        ))
    })
}

fn put_thresholds(w: &mut ByteWriter, specs: &[ThresholdSpec]) {
    w.put_u32(specs.len() as u32);
    for spec in specs {
        w.put_i64(spec.threshold());
        w.put_bool(spec.is_flipped());
    }
}

/// Reads thresholds, requiring exactly `expected` of them so the
/// layer-constructor count assertion can never fire.
fn get_thresholds(
    r: &mut ByteReader<'_>,
    expected: usize,
) -> Result<Vec<ThresholdSpec>, ArtifactError> {
    let count = r.count(9)?;
    if count != expected {
        return Err(ArtifactError::malformed(format!(
            "threshold count {count} != weight rows {expected}"
        )));
    }
    let mut specs = Vec::with_capacity(count);
    for _ in 0..count {
        let t = r.i64()?;
        let flipped = r.bool()?;
        specs.push(if flipped {
            ThresholdSpec::fire_below(t)
        } else {
            ThresholdSpec::fire_at_or_above(t)
        });
    }
    Ok(specs)
}

/// Conv geometry shared by `FixedConv` and `BinConv`.
struct ConvGeom {
    in_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

fn get_conv_geom(r: &mut ByteReader<'_>, filters: &BitMatrix) -> Result<ConvGeom, ArtifactError> {
    let in_channels = r.u32()? as usize;
    let kernel = r.u32()? as usize;
    let stride = r.u32()? as usize;
    let pad = r.u32()? as usize;
    let fan_in = (in_channels as u64) * (kernel as u64) * (kernel as u64);
    if fan_in != filters.cols() as u64 {
        return Err(ArtifactError::malformed(format!(
            "conv fan-in {in_channels}·{kernel}² = {fan_in} != filter columns {}",
            filters.cols()
        )));
    }
    Ok(ConvGeom {
        in_channels,
        kernel,
        stride,
        pad,
    })
}

fn put_layer(w: &mut ByteWriter, layer: &Layer) -> Result<(), ArtifactError> {
    match layer {
        Layer::FixedLinear(l) => {
            w.put_u8(LAYER_FIXED_LINEAR);
            w.put_str(layer.name());
            put_bitmatrix(w, l.weights());
            put_thresholds(w, l.thresholds());
        }
        Layer::FixedConv(l) => {
            w.put_u8(LAYER_FIXED_CONV);
            w.put_str(layer.name());
            put_bitmatrix(w, l.filters());
            put_thresholds(w, l.thresholds());
            w.put_u32(l.in_channels() as u32);
            w.put_u32(l.kernel() as u32);
            w.put_u32(l.stride() as u32);
            w.put_u32(l.pad() as u32);
        }
        Layer::BinLinear(l) => {
            w.put_u8(LAYER_BIN_LINEAR);
            w.put_str(layer.name());
            put_bitmatrix(w, l.weights());
            put_thresholds(w, l.thresholds());
        }
        Layer::BinConv(l) => {
            w.put_u8(LAYER_BIN_CONV);
            w.put_str(layer.name());
            put_bitmatrix(w, l.filters());
            put_thresholds(w, l.thresholds());
            w.put_u32(l.in_channels() as u32);
            w.put_u32(l.kernel() as u32);
            w.put_u32(l.stride() as u32);
            w.put_u32(l.pad() as u32);
        }
        Layer::MaxPool2 => w.put_u8(LAYER_MAXPOOL2),
        Layer::Flatten => w.put_u8(LAYER_FLATTEN),
        Layer::Output(l) => {
            w.put_u8(LAYER_OUTPUT);
            w.put_str(layer.name());
            let rows = l.weights().len();
            let cols = l.weights().first().map_or(0, Vec::len);
            w.put_u32(rows as u32);
            w.put_u32(cols as u32);
            for row in l.weights() {
                for &v in row {
                    w.put_f32(v);
                }
            }
            for &b in l.bias() {
                w.put_f32(b);
            }
        }
        // `Layer` is non_exhaustive upstream; a variant this writer does
        // not know cannot be represented in format v1.
        other => {
            return Err(ArtifactError::malformed(format!(
                "layer '{}' has no format-v1 encoding",
                other.name()
            )))
        }
    }
    Ok(())
}

fn get_layer(r: &mut ByteReader<'_>) -> Result<Layer, ArtifactError> {
    match r.u8()? {
        LAYER_FIXED_LINEAR => {
            let name = r.str()?;
            let weights = get_bitmatrix(r)?;
            let thresholds = get_thresholds(r, weights.rows())?;
            Ok(Layer::FixedLinear(FixedLinear::new(
                name, weights, thresholds,
            )))
        }
        LAYER_FIXED_CONV => {
            let name = r.str()?;
            let filters = get_bitmatrix(r)?;
            let thresholds = get_thresholds(r, filters.rows())?;
            let g = get_conv_geom(r, &filters)?;
            Ok(Layer::FixedConv(FixedConv::new(
                name,
                filters,
                thresholds,
                g.in_channels,
                g.kernel,
                g.stride,
                g.pad,
            )))
        }
        LAYER_BIN_LINEAR => {
            let name = r.str()?;
            let weights = get_bitmatrix(r)?;
            let thresholds = get_thresholds(r, weights.rows())?;
            Ok(Layer::BinLinear(BinLinear::new(name, weights, thresholds)))
        }
        LAYER_BIN_CONV => {
            let name = r.str()?;
            let filters = get_bitmatrix(r)?;
            let thresholds = get_thresholds(r, filters.rows())?;
            let g = get_conv_geom(r, &filters)?;
            Ok(Layer::BinConv(BinConv::new(
                name,
                filters,
                thresholds,
                g.in_channels,
                g.kernel,
                g.stride,
                g.pad,
            )))
        }
        LAYER_MAXPOOL2 => Ok(Layer::MaxPool2),
        LAYER_FLATTEN => Ok(Layer::Flatten),
        LAYER_OUTPUT => {
            let name = r.str()?;
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            let claimed = (rows as u64)
                .saturating_mul(cols as u64)
                .saturating_add(rows as u64)
                .saturating_mul(4);
            if claimed > r.remaining() as u64 {
                return Err(ArtifactError::Truncated {
                    context: "output layer weights",
                });
            }
            let mut weights = Vec::with_capacity(rows);
            for _ in 0..rows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(r.f32()?);
                }
                weights.push(row);
            }
            let mut bias = Vec::with_capacity(rows);
            for _ in 0..rows {
                bias.push(r.f32()?);
            }
            Ok(Layer::Output(OutputLinear::new(name, weights, bias)))
        }
        tag => Err(ArtifactError::malformed(format!("layer tag {tag}"))),
    }
}

/// Serializes a network into the model-section payload.
pub(crate) fn encode_model(net: &Bnn) -> Result<Vec<u8>, ArtifactError> {
    let mut w = ByteWriter::new();
    w.put_str(net.name());
    put_shape(&mut w, net.input_shape());
    w.put_u32(net.layers().len() as u32);
    for layer in net.layers() {
        put_layer(&mut w, layer)?;
    }
    Ok(w.into_inner())
}

/// Decodes and shape-checks a network from a model-section payload.
pub(crate) fn decode_model(payload: &[u8]) -> Result<Bnn, ArtifactError> {
    let mut r = ByteReader::new(payload, "model section");
    let name = r.str()?;
    let input_shape = get_shape(&mut r)?;
    let count = r.count(1)?;
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        layers.push(get_layer(&mut r)?);
    }
    r.finish()?;
    Bnn::new(name, input_shape, layers)
        .map_err(|e| ArtifactError::malformed(format!("network fails shape check: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_net() -> Bnn {
        let mut rng = StdRng::seed_from_u64(11);
        Bnn::new(
            "convnet",
            Shape::Img(1, 8, 8),
            vec![
                Layer::FixedConv(FixedConv::random("c1", 1, 4, 3, 1, 1, &mut rng)),
                Layer::MaxPool2,
                Layer::BinConv(BinConv::random("c2", 4, 4, 3, 1, 1, &mut rng)),
                Layer::Flatten,
                Layer::BinLinear(BinLinear::random("h1", 64, 16, &mut rng)),
                Layer::Output(OutputLinear::random("out", 16, 4, &mut rng)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn model_round_trips_exactly() {
        let net = conv_net();
        let bytes = encode_model(&net).unwrap();
        let back = decode_model(&bytes).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn mlp_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Bnn::new(
            "mlp",
            Shape::Flat(32),
            vec![
                Layer::FixedLinear(FixedLinear::random("in", 32, 24, &mut rng)),
                Layer::BinLinear(BinLinear::random("h", 24, 24, &mut rng)),
                Layer::Output(OutputLinear::random("out", 24, 10, &mut rng)),
            ],
        )
        .unwrap();
        let bytes = encode_model(&net).unwrap();
        assert_eq!(decode_model(&bytes).unwrap(), net);
    }

    #[test]
    fn bad_layer_tag_is_malformed() {
        let net = conv_net();
        let mut bytes = encode_model(&net).unwrap();
        // The first layer tag sits right after name and shape.
        let tag_pos = 4 + net.name().len() + 1 + 24 + 4;
        bytes[tag_pos] = 250;
        assert!(matches!(
            decode_model(&bytes),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_model_is_truncated() {
        let bytes = encode_model(&conv_net()).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(decode_model(cut).is_err());
    }
}
