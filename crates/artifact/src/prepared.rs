//! The prepared-state section: a snapshot of everything a backend's
//! `prepare()` produces, so deploy-from-file can skip crossbar
//! programming (and its RNG draws, write-count wear, and compile time).
//!
//! Restoring is *not* a re-program: device conductances, transmission
//! levels, write counters, execution counters, and the post-programming
//! RNG position are all reloaded verbatim, so a restored session's noisy
//! output stream is bit-identical to the in-memory session the snapshot
//! was taken from.
//!
//! The section also records the [`PreparedMeta`] the state was captured
//! under (backend, seed, noise profile, drift, fault profile). Loaders
//! must compare it against the requested session options and reject
//! conflicts — silently serving stale noise configuration is the exact
//! failure mode the runtime's no-silent-fallback rule exists to prevent.

use crate::error::ArtifactError;
use crate::model::{get_shape, put_shape};
use crate::wire::{ByteReader, ByteWriter};
use eb_bitnn::ThresholdSpec;
use eb_core::{
    AluOp, ChipConfig, CompiledNetwork, Design, DesignKind, Instruction, LayerPlacement,
    MappedVcore, MmmLane, OpticalTacitMapped, Program, VcoreAddr,
};
use eb_mapping::{SeededTacitMapped, TacitMapped};
use eb_photonics::{OpcmDevice, OpcmParams, OpticalCrossbar, Photodetector, Receiver, Tia};
use eb_xbar::{
    CellKind, CrossbarArray, DeviceParams, EpcmDevice, FaultConfig, VmmEngine, XbarConfig,
    XbarEnergies, XbarTimings,
};

const BACKEND_EPCM: u8 = 1;
const BACKEND_PHOTONIC: u8 = 2;
const BACKEND_SIMULATOR: u8 = 3;

/// Which backend captured a prepared-state section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreparedBackend {
    /// Electronic TacitMap-ePCM crossbars (`BackendKind::Epcm`).
    Epcm,
    /// Optical oPCM crossbars with WDM (`BackendKind::Photonic`).
    Photonic,
    /// The full-chip EinsteinBarrier simulator (`BackendKind::Simulator`).
    Simulator,
}

impl PreparedBackend {
    /// The runtime backend name this state belongs to.
    pub fn name(self) -> &'static str {
        match self {
            Self::Epcm => "epcm",
            Self::Photonic => "photonic",
            Self::Simulator => "simulator",
        }
    }
}

/// The session configuration a prepared-state snapshot was captured
/// under. Loaders must verify it against the requested options.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedMeta {
    /// Capturing backend.
    pub backend: PreparedBackend,
    /// Base noise seed the state was programmed with.
    pub seed: u64,
    /// Whether the noisy device profile was active.
    pub noisy: bool,
    /// Drift read-time ratio applied at capture, if any.
    pub drift_t_ratio: Option<f64>,
    /// Fault profile applied at capture, if any.
    pub fault: Option<FaultConfig>,
}

/// One photonic matrix layer: the programmed optical crossbars plus the
/// RNG position and WDM-lane counter of the owning session.
#[derive(Debug)]
pub struct PhotonicMat {
    /// The programmed optical mapping.
    pub mapped: OpticalTacitMapped,
    /// RNG state for subsequent receiver/device draws.
    pub rng_state: [u64; 4],
    /// WDM lanes carried so far.
    pub lanes: u64,
}

/// The design parameters a simulator snapshot was compiled for — enough
/// to refuse restoring onto a differently-configured simulator without
/// serializing the full cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignFingerprint {
    /// Design kind.
    pub kind: DesignKind,
    /// Chip topology.
    pub chip: ChipConfig,
    /// Crossbar geometry/periphery.
    pub xbar: XbarConfig,
    /// WDM capacity.
    pub wdm_capacity: usize,
}

impl DesignFingerprint {
    /// Captures the restore-relevant parameters of a design.
    pub fn of(design: &Design) -> Self {
        Self {
            kind: design.kind,
            chip: design.chip.clone(),
            xbar: design.xbar.clone(),
            wdm_capacity: design.wdm_capacity,
        }
    }

    /// Whether a design matches this fingerprint.
    pub fn matches(&self, design: &Design) -> bool {
        self.kind == design.kind
            && self.chip == design.chip
            && self.xbar == design.xbar
            && self.wdm_capacity == design.wdm_capacity
    }
}

/// The backend-specific programmed state.
#[derive(Debug)]
pub enum PreparedState {
    /// One seeded electronic mapping per matrix layer.
    Epcm(Vec<SeededTacitMapped>),
    /// One optical mapping per matrix layer.
    Photonic(Vec<PhotonicMat>),
    /// A compiled simulator program with its mapped weights.
    Simulator {
        /// Design the network was compiled for.
        fingerprint: Box<DesignFingerprint>,
        /// The compiled network (program, mapped vcores, tables).
        compiled: CompiledNetwork,
        /// RNG state after compilation/programming.
        rng_state: [u64; 4],
    },
}

impl PreparedState {
    /// The backend this state restores onto.
    pub fn backend(&self) -> PreparedBackend {
        match self {
            Self::Epcm(_) => PreparedBackend::Epcm,
            Self::Photonic(_) => PreparedBackend::Photonic,
            Self::Simulator { .. } => PreparedBackend::Simulator,
        }
    }
}

/// A complete prepared-state snapshot: capture metadata plus state.
#[derive(Debug)]
pub struct Prepared {
    /// Capture-time session configuration.
    pub meta: PreparedMeta,
    /// The programmed state itself.
    pub state: PreparedState,
}

// ---------------------------------------------------------------------
// Leaf codecs
// ---------------------------------------------------------------------

fn put_opt_f64(w: &mut ByteWriter, v: Option<f64>) {
    match v {
        None => w.put_u8(0),
        Some(x) => {
            w.put_u8(1);
            w.put_f64(x);
        }
    }
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, ArtifactError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        tag => Err(ArtifactError::malformed(format!("option tag {tag}"))),
    }
}

fn put_fault(w: &mut ByteWriter, fault: Option<&FaultConfig>) {
    match fault {
        None => w.put_u8(0),
        Some(f) => {
            w.put_u8(1);
            w.put_f64(f.stuck_on);
            w.put_f64(f.stuck_off);
            w.put_f64(f.dead);
            w.put_u64(f.seed);
        }
    }
}

fn get_fault(r: &mut ByteReader<'_>) -> Result<Option<FaultConfig>, ArtifactError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(FaultConfig {
            stuck_on: r.f64()?,
            stuck_off: r.f64()?,
            dead: r.f64()?,
            seed: r.u64()?,
        })),
        tag => Err(ArtifactError::malformed(format!("fault tag {tag}"))),
    }
}

fn put_device_params(w: &mut ByteWriter, p: &DeviceParams) {
    w.put_f64(p.g_on);
    w.put_f64(p.g_off);
    w.put_f64(p.program_sigma);
    w.put_f64(p.read_sigma);
    w.put_f64(p.drift_nu);
}

fn get_device_params(r: &mut ByteReader<'_>) -> Result<DeviceParams, ArtifactError> {
    Ok(DeviceParams {
        g_on: r.f64()?,
        g_off: r.f64()?,
        program_sigma: r.f64()?,
        read_sigma: r.f64()?,
        drift_nu: r.f64()?,
    })
}

pub(crate) fn put_xbar_config(w: &mut ByteWriter, cfg: &XbarConfig) {
    w.put_usize(cfg.rows);
    w.put_usize(cfg.cols);
    w.put_u8(match cfg.cell {
        CellKind::OneT1R => 0,
        CellKind::TwoT2R => 1,
    });
    w.put_f64(cfg.v_read);
    w.put_u8(cfg.adc_bits);
    w.put_usize(cfg.n_adcs);
    put_device_params(w, &cfg.device);
    put_fault(w, cfg.fault.as_ref());
    let t = &cfg.timings;
    for v in [
        t.t_settle_ns,
        t.t_adc_ns,
        t.t_dac_ns,
        t.t_pcsa_cycle_ns,
        t.t_popcount_stage_ns,
        t.t_write_ns,
    ] {
        w.put_f64(v);
    }
    let e = &cfg.energies;
    for v in [
        e.e_adc_pj,
        e.e_dac_pj,
        e.e_cell_read_fj,
        e.e_pcsa_fj,
        e.e_popcount_bit_fj,
        e.e_write_pj,
        e.e_row_drive_fj,
    ] {
        w.put_f64(v);
    }
}

pub(crate) fn get_xbar_config(r: &mut ByteReader<'_>) -> Result<XbarConfig, ArtifactError> {
    let rows = r.usize()?;
    let cols = r.usize()?;
    let cell = match r.u8()? {
        0 => CellKind::OneT1R,
        1 => CellKind::TwoT2R,
        tag => return Err(ArtifactError::malformed(format!("cell kind tag {tag}"))),
    };
    let v_read = r.f64()?;
    let adc_bits = r.u8()?;
    let n_adcs = r.usize()?;
    let device = get_device_params(r)?;
    let fault = get_fault(r)?;
    let timings = XbarTimings {
        t_settle_ns: r.f64()?,
        t_adc_ns: r.f64()?,
        t_dac_ns: r.f64()?,
        t_pcsa_cycle_ns: r.f64()?,
        t_popcount_stage_ns: r.f64()?,
        t_write_ns: r.f64()?,
    };
    let energies = XbarEnergies {
        e_adc_pj: r.f64()?,
        e_dac_pj: r.f64()?,
        e_cell_read_fj: r.f64()?,
        e_pcsa_fj: r.f64()?,
        e_popcount_bit_fj: r.f64()?,
        e_write_pj: r.f64()?,
        e_row_drive_fj: r.f64()?,
    };
    Ok(XbarConfig {
        rows,
        cols,
        cell,
        v_read,
        adc_bits,
        n_adcs,
        device,
        fault,
        timings,
        energies,
    })
}

// Cell grids are the bulk of a prepared section (one entry per device
// across every crossbar), so they use a structure-of-arrays layout: the
// full tag run first, then one value record per programmed cell, in
// row-major tag order. Decoding then needs two bounds checks per array
// rather than two per cell — cold-start decode time is the whole point
// of shipping prepared state.

fn put_array(w: &mut ByteWriter, a: &CrossbarArray) {
    w.put_u32(a.rows() as u32);
    w.put_u32(a.cols() as u32);
    put_device_params(w, a.params());
    w.put_u64(a.write_count());
    w.put_f64(a.drift_t_ratio());
    put_fault(w, a.fault_config());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            w.put_u8(match a.device(r, c) {
                None => 0,
                Some(d) => {
                    if d.stored_bit() {
                        2
                    } else {
                        1
                    }
                }
            });
        }
    }
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if let Some(d) = a.device(r, c) {
                w.put_f64(d.conductance());
            }
        }
    }
}

fn get_array(r: &mut ByteReader<'_>) -> Result<CrossbarArray, ArtifactError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let params = get_device_params(r)?;
    let writes = r.u64()?;
    let t_ratio = r.f64()?;
    let fault = get_fault(r)?;
    let cells = (rows as u64).saturating_mul(cols as u64);
    let cells = usize::try_from(cells)
        .ok()
        .filter(|&n| n <= r.remaining())
        .ok_or(ArtifactError::Truncated {
            context: "crossbar cells",
        })?;
    let tags = r.bytes(cells)?;
    let mut programmed = 0usize;
    for &tag in tags {
        match tag {
            0 => {}
            1 | 2 => programmed += 1,
            tag => return Err(ArtifactError::malformed(format!("cell tag {tag}"))),
        }
    }
    let mut values = r.bytes(programmed * 8)?.chunks_exact(8);
    let devices = tags
        .iter()
        .map(|&tag| match tag {
            0 => None,
            _ => {
                let g = f64::from_le_bytes(values.next().expect("counted").try_into().expect("8"));
                Some(EpcmDevice::from_parts(tag == 2, g))
            }
        })
        .collect();
    let mut array = CrossbarArray::from_parts(rows, cols, params, devices, writes)
        .map_err(|e| ArtifactError::malformed(format!("crossbar array: {e}")))?;
    array.set_drift_t_ratio(t_ratio);
    array
        .set_fault_config(fault)
        .map_err(|e| ArtifactError::malformed(format!("crossbar fault config: {e}")))?;
    Ok(array)
}

fn put_tacitmapped(w: &mut ByteWriter, m: &TacitMapped) {
    w.put_usize(m.fan_in());
    w.put_usize(m.out_vectors());
    put_xbar_config(w, m.config());
    w.put_u64(m.steps_taken());
    w.put_f64(m.energy_j());
    let grid = m.engines();
    w.put_u32(grid.len() as u32);
    w.put_u32(grid.first().map_or(0, Vec::len) as u32);
    for row in grid {
        for engine in row {
            put_array(w, engine.array());
        }
    }
}

fn get_tacitmapped(r: &mut ByteReader<'_>) -> Result<TacitMapped, ArtifactError> {
    let m = r.usize()?;
    let n = r.usize()?;
    let cfg = get_xbar_config(r)?;
    let executions = r.u64()?;
    let energy_j = r.f64()?;
    let row_chunks = r.u32()? as usize;
    let col_chunks = r.u32()? as usize;
    let arrays = (row_chunks as u64).saturating_mul(col_chunks as u64);
    // Each serialized array is ≥ 49 bytes of fixed header alone.
    if arrays.saturating_mul(49) > r.remaining() as u64 {
        return Err(ArtifactError::Truncated {
            context: "tacitmap engine grid",
        });
    }
    let mut engines = Vec::with_capacity(row_chunks);
    for _ in 0..row_chunks {
        let mut row = Vec::with_capacity(col_chunks);
        for _ in 0..col_chunks {
            row.push(VmmEngine::with_defaults(get_array(r)?));
        }
        engines.push(row);
    }
    TacitMapped::from_parts(engines, m, n, cfg, executions, energy_j)
        .map_err(|e| ArtifactError::malformed(format!("tacitmap mapping: {e}")))
}

fn put_rng_state(w: &mut ByteWriter, s: [u64; 4]) {
    for v in s {
        w.put_u64(v);
    }
}

fn get_rng_state(r: &mut ByteReader<'_>) -> Result<[u64; 4], ArtifactError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn put_seeded(w: &mut ByteWriter, m: &SeededTacitMapped) {
    put_rng_state(w, m.rng_state());
    put_tacitmapped(w, m.inner());
}

fn get_seeded(r: &mut ByteReader<'_>) -> Result<SeededTacitMapped, ArtifactError> {
    let rng_state = get_rng_state(r)?;
    let inner = get_tacitmapped(r)?;
    Ok(SeededTacitMapped::from_parts(inner, rng_state))
}

fn put_opcm_params(w: &mut ByteWriter, p: &OpcmParams) {
    w.put_f64(p.t_high);
    w.put_f64(p.t_low);
    w.put_usize(p.levels);
    w.put_f64(p.write_sigma);
}

fn get_opcm_params(r: &mut ByteReader<'_>) -> Result<OpcmParams, ArtifactError> {
    Ok(OpcmParams {
        t_high: r.f64()?,
        t_low: r.f64()?,
        levels: r.usize()?,
        write_sigma: r.f64()?,
    })
}

// Same structure-of-arrays layout as electronic arrays: tags first,
// then a 16-byte `(level u64, transmission f64)` record per programmed
// cell in tag order.

fn put_ocrossbar(w: &mut ByteWriter, x: &OpticalCrossbar) {
    w.put_u32(x.rows() as u32);
    w.put_u32(x.cols() as u32);
    put_opcm_params(w, x.params());
    w.put_u64(x.write_count());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            w.put_u8(u8::from(x.device(r, c).is_some()));
        }
    }
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            if let Some(d) = x.device(r, c) {
                w.put_usize(d.level());
                w.put_f64(d.transmission());
            }
        }
    }
}

fn get_ocrossbar(r: &mut ByteReader<'_>) -> Result<OpticalCrossbar, ArtifactError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let params = get_opcm_params(r)?;
    let writes = r.u64()?;
    let cells = (rows as u64).saturating_mul(cols as u64);
    let cells = usize::try_from(cells)
        .ok()
        .filter(|&n| n <= r.remaining())
        .ok_or(ArtifactError::Truncated {
            context: "optical crossbar cells",
        })?;
    let tags = r.bytes(cells)?;
    let mut programmed = 0usize;
    for &tag in tags {
        match tag {
            0 => {}
            1 => programmed += 1,
            tag => return Err(ArtifactError::malformed(format!("opcm cell tag {tag}"))),
        }
    }
    let mut values = r.bytes(programmed * 16)?.chunks_exact(16);
    let devices = tags
        .iter()
        .map(|&tag| match tag {
            0 => Ok(None),
            _ => {
                let rec = values.next().expect("counted");
                let level = u64::from_le_bytes(rec[..8].try_into().expect("8"));
                let level = usize::try_from(level).map_err(|_| {
                    ArtifactError::malformed(format!("opcm level {level} exceeds usize"))
                })?;
                let t = f64::from_le_bytes(rec[8..].try_into().expect("8"));
                Ok(Some(OpcmDevice::from_parts(level, t)))
            }
        })
        .collect::<Result<_, ArtifactError>>()?;
    OpticalCrossbar::from_parts(rows, cols, params, devices, writes)
        .map_err(|e| ArtifactError::malformed(format!("optical crossbar: {e}")))
}

fn put_receiver(w: &mut ByteWriter, rx: &Receiver) {
    w.put_f64(rx.detector.responsivity);
    w.put_f64(rx.detector.dark_current_a);
    w.put_f64(rx.tia.gain_ohm);
    w.put_f64(rx.tia.bandwidth_hz);
    w.put_f64(rx.tia.power_mw);
    w.put_f64(rx.tia.temp_k);
    w.put_f64(rx.tia.rin_db_hz);
    w.put_bool(rx.noiseless);
}

fn get_receiver(r: &mut ByteReader<'_>) -> Result<Receiver, ArtifactError> {
    Ok(Receiver {
        detector: Photodetector {
            responsivity: r.f64()?,
            dark_current_a: r.f64()?,
        },
        tia: Tia {
            gain_ohm: r.f64()?,
            bandwidth_hz: r.f64()?,
            power_mw: r.f64()?,
            temp_k: r.f64()?,
            rin_db_hz: r.f64()?,
        },
        noiseless: r.bool()?,
    })
}

fn put_optical(w: &mut ByteWriter, m: &OpticalTacitMapped) {
    w.put_usize(m.fan_in());
    w.put_usize(m.out_vectors());
    let (rows, cols) = m.xbar_shape();
    w.put_usize(rows);
    w.put_usize(cols);
    w.put_usize(m.capacity());
    w.put_u64(m.steps_taken());
    put_receiver(w, m.receiver());
    let grid = m.xbars();
    w.put_u32(grid.len() as u32);
    w.put_u32(grid.first().map_or(0, Vec::len) as u32);
    for row in grid {
        for xbar in row {
            put_ocrossbar(w, xbar);
        }
    }
}

fn get_optical(r: &mut ByteReader<'_>) -> Result<OpticalTacitMapped, ArtifactError> {
    let m = r.usize()?;
    let n = r.usize()?;
    let rows = r.usize()?;
    let cols = r.usize()?;
    let k = r.usize()?;
    let steps = r.u64()?;
    let receiver = get_receiver(r)?;
    let row_chunks = r.u32()? as usize;
    let col_chunks = r.u32()? as usize;
    let xbar_count = (row_chunks as u64).saturating_mul(col_chunks as u64);
    // Each serialized optical crossbar is ≥ 48 bytes of fixed header.
    if xbar_count.saturating_mul(48) > r.remaining() as u64 {
        return Err(ArtifactError::Truncated {
            context: "optical crossbar grid",
        });
    }
    let mut xbars = Vec::with_capacity(row_chunks);
    for _ in 0..row_chunks {
        let mut row = Vec::with_capacity(col_chunks);
        for _ in 0..col_chunks {
            row.push(get_ocrossbar(r)?);
        }
        xbars.push(row);
    }
    OpticalTacitMapped::from_parts(xbars, k, receiver, m, n, rows, cols, steps)
        .map_err(|e| ArtifactError::malformed(format!("optical mapping: {e}")))
}

// ---------------------------------------------------------------------
// Compiled-simulator codecs
// ---------------------------------------------------------------------

fn put_instruction(w: &mut ByteWriter, i: &Instruction) -> Result<(), ArtifactError> {
    match i {
        Instruction::LoadInput { dst, bits } => {
            w.put_u8(0);
            w.put_usize(*dst);
            w.put_u8(*bits);
        }
        Instruction::Mov { dst, src } => {
            w.put_u8(1);
            w.put_usize(*dst);
            w.put_usize(*src);
        }
        Instruction::Fill { dst, value, len } => {
            w.put_u8(2);
            w.put_usize(*dst);
            w.put_f64(*value);
            w.put_usize(*len);
        }
        Instruction::Const { dst, values } => {
            w.put_u8(3);
            w.put_usize(*dst);
            w.put_u32(values.len() as u32);
            for &v in values {
                w.put_f64(v);
            }
        }
        Instruction::Not { dst, src } => {
            w.put_u8(4);
            w.put_usize(*dst);
            w.put_usize(*src);
        }
        Instruction::Window {
            dst,
            src,
            channels,
            height,
            width,
            kernel,
            stride,
            pad,
            oy,
            ox,
        } => {
            w.put_u8(5);
            for v in [
                *dst, *src, *channels, *height, *width, *kernel, *stride, *pad, *oy, *ox,
            ] {
                w.put_usize(v);
            }
        }
        Instruction::Scatter {
            dst,
            src,
            out_channels,
            oh,
            ow,
            oy,
            ox,
        } => {
            w.put_u8(6);
            for v in [*dst, *src, *out_channels, *oh, *ow, *oy, *ox] {
                w.put_usize(v);
            }
        }
        Instruction::BitSlice { dst, src, bit } => {
            w.put_u8(7);
            w.put_usize(*dst);
            w.put_usize(*src);
            w.put_u8(*bit);
        }
        Instruction::ShiftAdd { dst, src, shift } => {
            w.put_u8(8);
            w.put_usize(*dst);
            w.put_usize(*src);
            w.put_i32(*shift);
        }
        Instruction::Alu { op, dst, a, b } => {
            w.put_u8(9);
            w.put_u8(match op {
                AluOp::Add => 0,
                AluOp::Sub => 1,
                AluOp::Max => 2,
            });
            w.put_usize(*dst);
            w.put_usize(*a);
            w.put_usize(*b);
        }
        Instruction::Scale { dst, src, scale } => {
            w.put_u8(10);
            w.put_usize(*dst);
            w.put_usize(*src);
            w.put_f64(*scale);
        }
        Instruction::Vmm {
            vcore,
            dst,
            pos,
            neg,
        } => {
            w.put_u8(11);
            for v in [*vcore, *dst, *pos, *neg] {
                w.put_usize(v);
            }
        }
        Instruction::Mmm { vcore, lanes } => {
            w.put_u8(12);
            w.put_usize(*vcore);
            w.put_u32(lanes.len() as u32);
            for lane in lanes {
                w.put_usize(lane.pos);
                w.put_usize(lane.neg);
                w.put_usize(lane.dst);
            }
        }
        Instruction::Threshold { dst, src, table } => {
            w.put_u8(13);
            for v in [*dst, *src, *table] {
                w.put_usize(v);
            }
        }
        Instruction::MaxPool2 {
            dst,
            src,
            channels,
            height,
            width,
        } => {
            w.put_u8(14);
            for v in [*dst, *src, *channels, *height, *width] {
                w.put_usize(v);
            }
        }
        Instruction::OutputFc { dst, src, layer } => {
            w.put_u8(15);
            for v in [*dst, *src, *layer] {
                w.put_usize(v);
            }
        }
        Instruction::Halt { result } => {
            w.put_u8(16);
            w.put_usize(*result);
        }
        // `Instruction` is non_exhaustive upstream.
        other => {
            return Err(ArtifactError::malformed(format!(
                "instruction {other} has no format-v1 encoding"
            )))
        }
    }
    Ok(())
}

fn get_instruction(r: &mut ByteReader<'_>) -> Result<Instruction, ArtifactError> {
    Ok(match r.u8()? {
        0 => Instruction::LoadInput {
            dst: r.usize()?,
            bits: r.u8()?,
        },
        1 => Instruction::Mov {
            dst: r.usize()?,
            src: r.usize()?,
        },
        2 => Instruction::Fill {
            dst: r.usize()?,
            value: r.f64()?,
            len: r.usize()?,
        },
        3 => {
            let dst = r.usize()?;
            let count = r.count(8)?;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.f64()?);
            }
            Instruction::Const { dst, values }
        }
        4 => Instruction::Not {
            dst: r.usize()?,
            src: r.usize()?,
        },
        5 => Instruction::Window {
            dst: r.usize()?,
            src: r.usize()?,
            channels: r.usize()?,
            height: r.usize()?,
            width: r.usize()?,
            kernel: r.usize()?,
            stride: r.usize()?,
            pad: r.usize()?,
            oy: r.usize()?,
            ox: r.usize()?,
        },
        6 => Instruction::Scatter {
            dst: r.usize()?,
            src: r.usize()?,
            out_channels: r.usize()?,
            oh: r.usize()?,
            ow: r.usize()?,
            oy: r.usize()?,
            ox: r.usize()?,
        },
        7 => Instruction::BitSlice {
            dst: r.usize()?,
            src: r.usize()?,
            bit: r.u8()?,
        },
        8 => Instruction::ShiftAdd {
            dst: r.usize()?,
            src: r.usize()?,
            shift: r.i32()?,
        },
        9 => {
            let op = match r.u8()? {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::Max,
                tag => return Err(ArtifactError::malformed(format!("alu op tag {tag}"))),
            };
            Instruction::Alu {
                op,
                dst: r.usize()?,
                a: r.usize()?,
                b: r.usize()?,
            }
        }
        10 => Instruction::Scale {
            dst: r.usize()?,
            src: r.usize()?,
            scale: r.f64()?,
        },
        11 => Instruction::Vmm {
            vcore: r.usize()?,
            dst: r.usize()?,
            pos: r.usize()?,
            neg: r.usize()?,
        },
        12 => {
            let vcore = r.usize()?;
            let count = r.count(24)?;
            let mut lanes = Vec::with_capacity(count);
            for _ in 0..count {
                lanes.push(MmmLane {
                    pos: r.usize()?,
                    neg: r.usize()?,
                    dst: r.usize()?,
                });
            }
            Instruction::Mmm { vcore, lanes }
        }
        13 => Instruction::Threshold {
            dst: r.usize()?,
            src: r.usize()?,
            table: r.usize()?,
        },
        14 => Instruction::MaxPool2 {
            dst: r.usize()?,
            src: r.usize()?,
            channels: r.usize()?,
            height: r.usize()?,
            width: r.usize()?,
        },
        15 => Instruction::OutputFc {
            dst: r.usize()?,
            src: r.usize()?,
            layer: r.usize()?,
        },
        16 => Instruction::Halt { result: r.usize()? },
        tag => return Err(ArtifactError::malformed(format!("instruction tag {tag}"))),
    })
}

fn put_spec(w: &mut ByteWriter, spec: &ThresholdSpec) {
    w.put_i64(spec.threshold());
    w.put_bool(spec.is_flipped());
}

fn get_spec(r: &mut ByteReader<'_>) -> Result<ThresholdSpec, ArtifactError> {
    let t = r.i64()?;
    Ok(if r.bool()? {
        ThresholdSpec::fire_below(t)
    } else {
        ThresholdSpec::fire_at_or_above(t)
    })
}

fn put_fingerprint(w: &mut ByteWriter, fp: &DesignFingerprint) {
    w.put_u8(match fp.kind {
        DesignKind::BaselineEpcm => 0,
        DesignKind::TacitMapEpcm => 1,
        DesignKind::EinsteinBarrier => 2,
    });
    w.put_usize(fp.chip.nodes);
    w.put_usize(fp.chip.tiles_per_node);
    w.put_usize(fp.chip.ecores_per_tile);
    w.put_usize(fp.chip.vcores_per_ecore);
    put_xbar_config(w, &fp.xbar);
    w.put_usize(fp.wdm_capacity);
}

fn get_fingerprint(r: &mut ByteReader<'_>) -> Result<DesignFingerprint, ArtifactError> {
    let kind = match r.u8()? {
        0 => DesignKind::BaselineEpcm,
        1 => DesignKind::TacitMapEpcm,
        2 => DesignKind::EinsteinBarrier,
        tag => return Err(ArtifactError::malformed(format!("design kind tag {tag}"))),
    };
    let chip = ChipConfig {
        nodes: r.usize()?,
        tiles_per_node: r.usize()?,
        ecores_per_tile: r.usize()?,
        vcores_per_ecore: r.usize()?,
    };
    let xbar = get_xbar_config(r)?;
    let wdm_capacity = r.usize()?;
    Ok(DesignFingerprint {
        kind,
        chip,
        xbar,
        wdm_capacity,
    })
}

fn put_compiled(w: &mut ByteWriter, c: &CompiledNetwork) -> Result<(), ArtifactError> {
    w.put_u32(c.program.len() as u32);
    for i in c.program.instructions() {
        put_instruction(w, i)?;
    }
    w.put_u32(c.vcores.len() as u32);
    for vcore in &c.vcores {
        match vcore {
            MappedVcore::Electronic(m) => {
                w.put_u8(0);
                put_tacitmapped(w, m);
            }
            MappedVcore::Optical(m) => {
                w.put_u8(1);
                put_optical(w, m);
            }
            // `MappedVcore` is non_exhaustive upstream.
            _ => {
                return Err(ArtifactError::malformed(
                    "mapped vcore variant has no format-v1 encoding",
                ))
            }
        }
    }
    w.put_u32(c.tables.len() as u32);
    for table in &c.tables {
        w.put_u32(table.len() as u32);
        for spec in table {
            put_spec(w, spec);
        }
    }
    w.put_u32(c.output_layers.len() as u32);
    for (weights, bias) in &c.output_layers {
        w.put_u32(weights.len() as u32);
        w.put_u32(weights.first().map_or(0, Vec::len) as u32);
        for row in weights {
            for &v in row {
                w.put_f32(v);
            }
        }
        for &b in bias {
            w.put_f32(b);
        }
    }
    w.put_u32(c.placements.len() as u32);
    for p in &c.placements {
        w.put_str(&p.layer);
        w.put_u32(p.crossbars.len() as u32);
        for addr in &p.crossbars {
            w.put_usize(addr.node);
            w.put_usize(addr.tile);
            w.put_usize(addr.ecore);
            w.put_usize(addr.vcore);
        }
        w.put_bool(p.oversubscribed);
    }
    w.put_u8(match c.design {
        DesignKind::BaselineEpcm => 0,
        DesignKind::TacitMapEpcm => 1,
        DesignKind::EinsteinBarrier => 2,
    });
    w.put_usize(c.wdm_capacity);
    w.put_usize(c.register_count);
    put_shape(w, c.input_shape);
    Ok(())
}

fn get_compiled(r: &mut ByteReader<'_>) -> Result<CompiledNetwork, ArtifactError> {
    let count = r.count(1)?;
    let mut instructions = Vec::with_capacity(count);
    for _ in 0..count {
        instructions.push(get_instruction(r)?);
    }
    let program = Program::from_instructions(instructions);
    let count = r.count(1)?;
    let mut vcores = Vec::with_capacity(count);
    for _ in 0..count {
        vcores.push(match r.u8()? {
            0 => MappedVcore::Electronic(get_tacitmapped(r)?),
            1 => MappedVcore::Optical(get_optical(r)?),
            tag => return Err(ArtifactError::malformed(format!("vcore tag {tag}"))),
        });
    }
    let count = r.count(4)?;
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.count(9)?;
        let mut table = Vec::with_capacity(len);
        for _ in 0..len {
            table.push(get_spec(r)?);
        }
        tables.push(table);
    }
    let count = r.count(8)?;
    let mut output_layers = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let claimed = (rows as u64)
            .saturating_mul(cols as u64)
            .saturating_add(rows as u64)
            .saturating_mul(4);
        if claimed > r.remaining() as u64 {
            return Err(ArtifactError::Truncated {
                context: "compiled output layer",
            });
        }
        let mut weights = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(cols);
            for _ in 0..cols {
                row.push(r.f32()?);
            }
            weights.push(row);
        }
        let mut bias = Vec::with_capacity(rows);
        for _ in 0..rows {
            bias.push(r.f32()?);
        }
        output_layers.push((weights, bias));
    }
    let count = r.count(9)?;
    let mut placements = Vec::with_capacity(count);
    for _ in 0..count {
        let layer = r.str()?;
        let n = r.count(32)?;
        let mut crossbars = Vec::with_capacity(n);
        for _ in 0..n {
            crossbars.push(VcoreAddr {
                node: r.usize()?,
                tile: r.usize()?,
                ecore: r.usize()?,
                vcore: r.usize()?,
            });
        }
        let oversubscribed = r.bool()?;
        placements.push(LayerPlacement {
            layer,
            crossbars,
            oversubscribed,
        });
    }
    let design = match r.u8()? {
        0 => DesignKind::BaselineEpcm,
        1 => DesignKind::TacitMapEpcm,
        2 => DesignKind::EinsteinBarrier,
        tag => return Err(ArtifactError::malformed(format!("design kind tag {tag}"))),
    };
    let wdm_capacity = r.usize()?;
    let register_count = r.usize()?;
    let input_shape = get_shape(r)?;
    Ok(CompiledNetwork {
        program,
        vcores,
        tables,
        output_layers,
        placements,
        design,
        wdm_capacity,
        register_count,
        input_shape,
    })
}

// ---------------------------------------------------------------------
// Section codec
// ---------------------------------------------------------------------

/// Serializes a prepared-state snapshot into the section payload.
pub(crate) fn encode_prepared(p: &Prepared) -> Result<Vec<u8>, ArtifactError> {
    if p.meta.backend != p.state.backend() {
        return Err(ArtifactError::malformed(format!(
            "prepared meta says backend '{}' but the state is for '{}'",
            p.meta.backend.name(),
            p.state.backend().name()
        )));
    }
    let mut w = ByteWriter::new();
    w.put_u8(match p.meta.backend {
        PreparedBackend::Epcm => BACKEND_EPCM,
        PreparedBackend::Photonic => BACKEND_PHOTONIC,
        PreparedBackend::Simulator => BACKEND_SIMULATOR,
    });
    w.put_u64(p.meta.seed);
    w.put_bool(p.meta.noisy);
    put_opt_f64(&mut w, p.meta.drift_t_ratio);
    put_fault(&mut w, p.meta.fault.as_ref());
    match &p.state {
        PreparedState::Epcm(mats) => {
            w.put_u32(mats.len() as u32);
            for mat in mats {
                put_seeded(&mut w, mat);
            }
        }
        PreparedState::Photonic(mats) => {
            w.put_u32(mats.len() as u32);
            for mat in mats {
                put_rng_state(&mut w, mat.rng_state);
                w.put_u64(mat.lanes);
                put_optical(&mut w, &mat.mapped);
            }
        }
        PreparedState::Simulator {
            fingerprint,
            compiled,
            rng_state,
        } => {
            put_fingerprint(&mut w, fingerprint);
            put_rng_state(&mut w, *rng_state);
            put_compiled(&mut w, compiled)?;
        }
    }
    Ok(w.into_inner())
}

/// Decodes a prepared-state snapshot from its section payload.
pub(crate) fn decode_prepared(payload: &[u8]) -> Result<Prepared, ArtifactError> {
    let mut r = ByteReader::new(payload, "prepared section");
    let backend = match r.u8()? {
        BACKEND_EPCM => PreparedBackend::Epcm,
        BACKEND_PHOTONIC => PreparedBackend::Photonic,
        BACKEND_SIMULATOR => PreparedBackend::Simulator,
        tag => return Err(ArtifactError::malformed(format!("backend tag {tag}"))),
    };
    let meta = PreparedMeta {
        backend,
        seed: r.u64()?,
        noisy: r.bool()?,
        drift_t_ratio: get_opt_f64(&mut r)?,
        fault: get_fault(&mut r)?,
    };
    let state = match backend {
        PreparedBackend::Epcm => {
            let count = r.count(61)?;
            let mut mats = Vec::with_capacity(count);
            for _ in 0..count {
                mats.push(get_seeded(&mut r)?);
            }
            PreparedState::Epcm(mats)
        }
        PreparedBackend::Photonic => {
            let count = r.count(40)?;
            let mut mats = Vec::with_capacity(count);
            for _ in 0..count {
                let rng_state = get_rng_state(&mut r)?;
                let lanes = r.u64()?;
                let mapped = get_optical(&mut r)?;
                mats.push(PhotonicMat {
                    mapped,
                    rng_state,
                    lanes,
                });
            }
            PreparedState::Photonic(mats)
        }
        PreparedBackend::Simulator => {
            let fingerprint = Box::new(get_fingerprint(&mut r)?);
            let rng_state = get_rng_state(&mut r)?;
            let compiled = get_compiled(&mut r)?;
            PreparedState::Simulator {
                fingerprint,
                compiled,
                rng_state,
            }
        }
    };
    r.finish()?;
    Ok(Prepared { meta, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eb_bitnn::BitMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn weights(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        BitMatrix::from_fn(rows, cols, |_, _| rng.gen::<bool>())
    }

    fn roundtrip(p: &Prepared) -> Prepared {
        decode_prepared(&encode_prepared(p).unwrap()).unwrap()
    }

    #[test]
    fn epcm_state_round_trips_with_identical_noisy_stream() {
        let w = weights(10, 20, 1);
        let cfg = XbarConfig::new(16, 16).with_device(DeviceParams::noisy());
        let mapped = TacitMapped::program_seeded(&w, &cfg, 77).unwrap();
        let p = Prepared {
            meta: PreparedMeta {
                backend: PreparedBackend::Epcm,
                seed: 77,
                noisy: true,
                drift_t_ratio: None,
                fault: None,
            },
            state: PreparedState::Epcm(vec![mapped]),
        };
        let back = roundtrip(&p);
        assert_eq!(back.meta, p.meta);
        let (PreparedState::Epcm(orig), PreparedState::Epcm(rest)) = (&p.state, &back.state) else {
            panic!("state kind changed across round trip");
        };
        // Same drives through both mappings must produce identical counts
        // even on the noisy device model: conductances and the RNG
        // position are restored verbatim, never re-drawn.
        let mut a = orig[0].clone();
        let mut b = rest[0].clone();
        let pos: eb_bitnn::BitVec = (0..20).map(|i| i % 3 == 0).collect();
        let neg = pos.complement();
        for _ in 0..3 {
            assert_eq!(
                a.execute_raw(&pos, &neg).unwrap(),
                b.execute_raw(&pos, &neg).unwrap()
            );
        }
        assert_eq!(a.rng_state(), b.rng_state());
    }

    #[test]
    fn photonic_state_round_trips() {
        let w = weights(6, 12, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mapped = OpticalTacitMapped::program(&w, 16, 16, 4, &mut rng).unwrap();
        let p = Prepared {
            meta: PreparedMeta {
                backend: PreparedBackend::Photonic,
                seed: 5,
                noisy: false,
                drift_t_ratio: None,
                fault: None,
            },
            state: PreparedState::Photonic(vec![PhotonicMat {
                mapped,
                rng_state: [1, 2, 3, 4],
                lanes: 9,
            }]),
        };
        let back = roundtrip(&p);
        let PreparedState::Photonic(mats) = &back.state else {
            panic!("state kind changed across round trip");
        };
        assert_eq!(mats[0].rng_state, [1, 2, 3, 4]);
        assert_eq!(mats[0].lanes, 9);
        assert_eq!(mats[0].mapped.fan_in(), 12);
        assert_eq!(mats[0].mapped.out_vectors(), 6);
        assert_eq!(mats[0].mapped.capacity(), 4);
    }

    #[test]
    fn meta_backend_must_match_state() {
        let p = Prepared {
            meta: PreparedMeta {
                backend: PreparedBackend::Photonic,
                seed: 0,
                noisy: false,
                drift_t_ratio: None,
                fault: None,
            },
            state: PreparedState::Epcm(vec![]),
        };
        assert!(matches!(
            encode_prepared(&p),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn corrupt_backend_tag_rejected() {
        let p = Prepared {
            meta: PreparedMeta {
                backend: PreparedBackend::Epcm,
                seed: 3,
                noisy: false,
                drift_t_ratio: Some(1.5),
                fault: Some(FaultConfig::dead_cells(0.01, 4)),
            },
            state: PreparedState::Epcm(vec![]),
        };
        let mut bytes = encode_prepared(&p).unwrap();
        bytes[0] = 42;
        assert!(matches!(
            decode_prepared(&bytes),
            Err(ArtifactError::Malformed { .. })
        ));
        // And meta options survive a clean round trip.
        assert_eq!(roundtrip(&p).meta, p.meta);
    }
}
