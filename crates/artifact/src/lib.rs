//! # eb-artifact — versioned, checksummed on-disk model artifacts
//!
//! The `.ebm` container: a binary format carrying a complete serialized
//! [`Bnn`] and, optionally, a snapshot of *prepared* backend state so
//! serving can deploy from a file with zero training or crossbar
//! programming on the path.
//!
//! Two layers of integrity checking back every load: an FNV-1a-64
//! whole-file checksum covering every byte outside its own storage, and
//! a CRC-32 per section. Decoding is strict — truncated, corrupted,
//! version-skewed, or structurally invalid bytes produce a typed
//! [`ArtifactError`], never a panic, and length prefixes are validated
//! against the bytes actually present before anything is allocated.
//!
//! ```no_run
//! use eb_artifact::{read_model, write_model};
//! # fn net() -> eb_bitnn::Bnn { unimplemented!() }
//! let info = write_model("model.ebm", &net(), None)?;
//! let artifact = read_model("model.ebm")?;
//! assert_eq!(artifact.info.checksum, info.checksum);
//! # Ok::<(), eb_artifact::ArtifactError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod format;
mod model;
mod prepared;
mod wire;

use std::fmt;
use std::path::Path;

use eb_bitnn::{Bnn, Layer, Shape};

pub use error::ArtifactError;
pub use format::{FORMAT_VERSION, MAGIC, SECTION_MODEL, SECTION_PREPARED};
pub use prepared::{
    DesignFingerprint, PhotonicMat, Prepared, PreparedBackend, PreparedMeta, PreparedState,
};

use format::{decode_container, encode_container, section_name};

/// Identity of an encoded artifact: format version plus the whole-file
/// checksum, as reported by `GET /v1/models` for file-loaded deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Container format version.
    pub version: u16,
    /// FNV-1a-64 whole-file checksum.
    pub checksum: u64,
}

impl fmt::Display for ArtifactInfo {
    /// `format v1, checksum 0x…` — matching the hex rendering of
    /// [`Summary`] and `GET /v1/models`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "format v{}, checksum {:#018x}",
            self.version, self.checksum
        )
    }
}

/// A fully decoded artifact.
#[derive(Debug)]
pub struct Artifact {
    /// The serialized network, shape-checked on load.
    pub net: Bnn,
    /// Prepared backend state, when the artifact carries a snapshot.
    pub prepared: Option<Prepared>,
    /// Version and checksum of the bytes this was decoded from.
    pub info: ArtifactInfo,
}

/// Encodes a network (and optional prepared state) into `.ebm` bytes.
///
/// # Errors
///
/// Returns [`ArtifactError::Malformed`] when the network or state
/// contains a construct format v1 cannot represent.
pub fn encode(net: &Bnn, prepared: Option<&Prepared>) -> Result<Vec<u8>, ArtifactError> {
    let mut sections = vec![(SECTION_MODEL, model::encode_model(net)?)];
    if let Some(p) = prepared {
        sections.push((SECTION_PREPARED, prepared::encode_prepared(p)?));
    }
    Ok(encode_container(&sections))
}

/// Validates the container once and decodes every known section,
/// returning the artifact alongside the section table (for
/// [`inspect_bytes`], which would otherwise re-hash the whole file).
fn decode_with_sections(bytes: &[u8]) -> Result<(Artifact, Vec<SectionSummary>), ArtifactError> {
    let (version, checksum, sections) = decode_container(bytes)?;
    let mut model = None;
    let mut prepared = None;
    for s in &sections {
        let slot = match s.id {
            SECTION_MODEL => &mut model,
            SECTION_PREPARED => &mut prepared,
            // Unknown ids are forward-compat: CRC-validated by the
            // container decode, then skipped.
            _ => continue,
        };
        if slot.replace(s.payload).is_some() {
            return Err(ArtifactError::malformed(format!(
                "duplicate {} section",
                section_name(s.id)
            )));
        }
    }
    let model = model.ok_or(ArtifactError::MissingSection { name: "model" })?;
    let summaries = sections
        .iter()
        .map(|s| SectionSummary {
            id: s.id,
            kind: section_name(s.id),
            offset: s.offset,
            len: s.len,
            crc32: s.crc,
        })
        .collect();
    let net = model::decode_model(model)?;
    let prepared = prepared.map(prepared::decode_prepared).transpose()?;
    Ok((
        Artifact {
            net,
            prepared,
            info: ArtifactInfo { version, checksum },
        },
        summaries,
    ))
}

/// Decodes `.ebm` bytes into a network and optional prepared state.
///
/// # Errors
///
/// Returns a typed [`ArtifactError`] for any invalid input: wrong magic,
/// unsupported version, checksum mismatch, truncation, or structural
/// corruption. Never panics.
pub fn decode(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
    Ok(decode_with_sections(bytes)?.0)
}

/// Encodes and writes an artifact, returning its identity.
///
/// The file is written to a sibling temporary path and atomically
/// renamed into place, so readers never observe a half-written artifact.
///
/// # Errors
///
/// Returns [`ArtifactError::Io`] on filesystem failure and
/// [`ArtifactError::Malformed`] when the input cannot be encoded.
pub fn write_model(
    path: impl AsRef<Path>,
    net: &Bnn,
    prepared: Option<&Prepared>,
) -> Result<ArtifactInfo, ArtifactError> {
    let path = path.as_ref();
    let bytes = encode(net, prepared)?;
    let info = ArtifactInfo {
        version: FORMAT_VERSION,
        checksum: u64::from_le_bytes(bytes[8..16].try_into().expect("header len")),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(info)
}

/// Reads and fully decodes an artifact file.
///
/// # Errors
///
/// Returns [`ArtifactError::Io`] on filesystem failure, otherwise any
/// decode error for invalid bytes.
pub fn read_model(path: impl AsRef<Path>) -> Result<Artifact, ArtifactError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

/// One section-table row in a [`Summary`].
#[derive(Debug, Clone)]
pub struct SectionSummary {
    /// Section id.
    pub id: u16,
    /// Human-readable section kind.
    pub kind: &'static str,
    /// Byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Section CRC-32.
    pub crc32: u32,
}

/// One layer row in a [`Summary`].
#[derive(Debug, Clone)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Layer kind (e.g. `bin-linear`).
    pub kind: &'static str,
    /// Kind-specific parameter description.
    pub detail: String,
}

/// Prepared-state description in a [`Summary`].
#[derive(Debug, Clone)]
pub struct PreparedSummary {
    /// Capturing backend name.
    pub backend: &'static str,
    /// Capture seed.
    pub seed: u64,
    /// Whether the noisy device profile was active.
    pub noisy: bool,
    /// Drift read-time ratio, if any.
    pub drift_t_ratio: Option<f64>,
    /// Whether a fault profile was active.
    pub faulted: bool,
    /// State-specific description (mapped layer count, program size...).
    pub detail: String,
}

/// Everything `eb-model inspect` prints: the result of a full strict
/// decode plus per-section metadata.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Container format version.
    pub version: u16,
    /// Whole-file FNV-1a-64 checksum.
    pub file_checksum: u64,
    /// Total file length in bytes.
    pub total_len: usize,
    /// Section table.
    pub sections: Vec<SectionSummary>,
    /// Network name.
    pub model_name: String,
    /// Network input shape.
    pub input_shape: String,
    /// Network output shape.
    pub output_shape: String,
    /// Layer table.
    pub layers: Vec<LayerSummary>,
    /// Prepared-state description, when present.
    pub prepared: Option<PreparedSummary>,
}

fn layer_summary(layer: &Layer) -> LayerSummary {
    let (kind, detail) = match layer {
        Layer::FixedLinear(l) => (
            "fixed-linear",
            format!(
                "{}×{} binary weights",
                l.weights().rows(),
                l.weights().cols()
            ),
        ),
        Layer::FixedConv(l) => (
            "fixed-conv",
            format!(
                "{} filters over {} ch, k={} s={} p={}",
                l.filters().rows(),
                l.in_channels(),
                l.kernel(),
                l.stride(),
                l.pad()
            ),
        ),
        Layer::BinLinear(l) => (
            "bin-linear",
            format!(
                "{}×{} binary weights",
                l.weights().rows(),
                l.weights().cols()
            ),
        ),
        Layer::BinConv(l) => (
            "bin-conv",
            format!(
                "{} filters over {} ch, k={} s={} p={}",
                l.filters().rows(),
                l.in_channels(),
                l.kernel(),
                l.stride(),
                l.pad()
            ),
        ),
        Layer::MaxPool2 => ("maxpool2", "2×2 OR pooling".to_string()),
        Layer::Flatten => ("flatten", "map → flat vector".to_string()),
        Layer::Output(l) => (
            "output",
            format!(
                "{} classes ← {} bits",
                l.weights().len(),
                l.weights().first().map_or(0, Vec::len)
            ),
        ),
        _ => ("unknown", "unrecognized layer kind".to_string()),
    };
    LayerSummary {
        name: layer.name().to_string(),
        kind,
        detail,
    }
}

fn prepared_summary(p: &Prepared) -> PreparedSummary {
    let detail = match &p.state {
        PreparedState::Epcm(mats) => format!("{} programmed electronic layer(s)", mats.len()),
        PreparedState::Photonic(mats) => format!("{} programmed optical layer(s)", mats.len()),
        PreparedState::Simulator { compiled, .. } => format!(
            "compiled program: {} instruction(s), {} vcore(s)",
            compiled.program.len(),
            compiled.vcores.len()
        ),
    };
    PreparedSummary {
        backend: p.meta.backend.name(),
        seed: p.meta.seed,
        noisy: p.meta.noisy,
        drift_t_ratio: p.meta.drift_t_ratio,
        faulted: p.meta.fault.is_some(),
        detail,
    }
}

fn shape_string(shape: Shape) -> String {
    format!("{shape}")
}

/// Fully decodes `.ebm` bytes and summarizes the result.
///
/// This is a *strict* inspection: every checksum is verified and both
/// sections are decoded end to end, so a summary is also a proof that
/// the artifact loads.
///
/// # Errors
///
/// Any decode error for invalid bytes.
pub fn inspect_bytes(bytes: &[u8]) -> Result<Summary, ArtifactError> {
    let (artifact, sections) = decode_with_sections(bytes)?;
    Ok(Summary {
        version: artifact.info.version,
        file_checksum: artifact.info.checksum,
        total_len: bytes.len(),
        sections,
        model_name: artifact.net.name().to_string(),
        input_shape: shape_string(artifact.net.input_shape()),
        output_shape: shape_string(artifact.net.output_shape()),
        layers: artifact.net.layers().iter().map(layer_summary).collect(),
        prepared: artifact.prepared.as_ref().map(prepared_summary),
    })
}

/// Reads and summarizes an artifact file (see [`inspect_bytes`]).
///
/// # Errors
///
/// Returns [`ArtifactError::Io`] on filesystem failure, otherwise any
/// decode error.
pub fn inspect_file(path: impl AsRef<Path>) -> Result<Summary, ArtifactError> {
    let bytes = std::fs::read(path)?;
    inspect_bytes(&bytes)
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "format v{}, {} bytes, checksum {:#018x}",
            self.version, self.total_len, self.file_checksum
        )?;
        writeln!(f, "sections:")?;
        for s in &self.sections {
            writeln!(
                f,
                "  [{:>2}] {:<14} offset {:>8}  {:>10} bytes  crc32 {:08x}",
                s.id, s.kind, s.offset, s.len, s.crc32
            )?;
        }
        writeln!(
            f,
            "model `{}`: {} → {}",
            self.model_name, self.input_shape, self.output_shape
        )?;
        for (i, l) in self.layers.iter().enumerate() {
            writeln!(f, "  {:>3}  {:<12} {:<12} {}", i, l.name, l.kind, l.detail)?;
        }
        match &self.prepared {
            None => writeln!(f, "prepared state: none (backends program on load)")?,
            Some(p) => {
                writeln!(
                    f,
                    "prepared state: {} (seed {}, {} profile{}{})",
                    p.detail,
                    p.seed,
                    if p.noisy { "noisy" } else { "ideal" },
                    match p.drift_t_ratio {
                        Some(t) => format!(", drift t/t₀ = {t}"),
                        None => String::new(),
                    },
                    if p.faulted { ", fault profile" } else { "" },
                )?;
                writeln!(f, "  backend: {}", p.backend)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eb_bitnn::{BinLinear, FixedLinear, OutputLinear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Bnn {
        let mut rng = StdRng::seed_from_u64(seed);
        Bnn::new(
            "mlp",
            Shape::Flat(16),
            vec![
                Layer::FixedLinear(FixedLinear::random("in", 16, 12, &mut rng)),
                Layer::BinLinear(BinLinear::random("h", 12, 12, &mut rng)),
                Layer::Output(OutputLinear::random("out", 12, 4, &mut rng)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let net = mlp(1);
        let bytes = encode(&net, None).unwrap();
        let artifact = decode(&bytes).unwrap();
        assert_eq!(artifact.net, net);
        assert!(artifact.prepared.is_none());
        assert_eq!(artifact.info.version, FORMAT_VERSION);
    }

    #[test]
    fn file_round_trip_reports_matching_info() {
        let dir = std::env::temp_dir().join("eb_artifact_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ebm");
        let net = mlp(2);
        let info = write_model(&path, &net, None).unwrap();
        let artifact = read_model(&path).unwrap();
        assert_eq!(artifact.info, info);
        assert_eq!(artifact.net, net);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_model_section_is_typed() {
        let bytes = encode_container(&[(SECTION_PREPARED, vec![1, 2, 3])]);
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::MissingSection { name: "model" })
        ));
    }

    #[test]
    fn duplicate_model_section_is_malformed() {
        let payload = model::encode_model(&mlp(3)).unwrap();
        let bytes = encode_container(&[(SECTION_MODEL, payload.clone()), (SECTION_MODEL, payload)]);
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let payload = model::encode_model(&mlp(4)).unwrap();
        let bytes = encode_container(&[(SECTION_MODEL, payload), (999, vec![0xAB; 16])]);
        let artifact = decode(&bytes).unwrap();
        assert_eq!(artifact.net.name(), "mlp");
    }

    #[test]
    fn summary_display_covers_the_artifact() {
        let net = mlp(5);
        let bytes = encode(&net, None).unwrap();
        let summary = inspect_bytes(&bytes).unwrap();
        assert_eq!(summary.model_name, "mlp");
        assert_eq!(summary.layers.len(), 3);
        assert_eq!(summary.sections.len(), 1);
        let text = summary.to_string();
        assert!(text.contains("model `mlp`"));
        assert!(text.contains("bin-linear"));
        assert!(text.contains("16"));
        assert!(text.contains("prepared state: none"));
    }
}
