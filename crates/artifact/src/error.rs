//! Typed artifact errors.
//!
//! Every malformed, truncated, corrupted, or version-skewed input byte
//! stream maps to one of these variants — loading never panics and never
//! allocates more than the input length can justify.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding, or verifying a `.ebm`
/// artifact.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The file does not start with the `EBMF` magic bytes.
    BadMagic,
    /// The container's format version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this reader understands.
        supported: u16,
    },
    /// The byte stream ended before a declared structure was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A stored checksum disagrees with the checksum of the bytes present.
    ChecksumMismatch {
        /// Which checksum failed (file FNV or a section CRC).
        what: &'static str,
        /// Checksum stored in the artifact (CRC-32 values zero-extended).
        expected: u64,
        /// Checksum computed over the bytes actually present.
        got: u64,
    },
    /// The bytes parse but violate a structural invariant (bad tag,
    /// impossible geometry, count/length mismatch, non-UTF-8 name...).
    Malformed {
        /// Human-readable description of the violated invariant.
        context: String,
    },
    /// A required section is absent from the section table.
    MissingSection {
        /// Name of the missing section.
        name: &'static str,
    },
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
}

impl ArtifactError {
    /// Convenience constructor for [`ArtifactError::Malformed`].
    pub fn malformed(context: impl Into<String>) -> Self {
        Self::Malformed {
            context: context.into(),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an .ebm artifact (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this reader supports up to {supported})"
            ),
            Self::Truncated { context } => {
                write!(f, "artifact truncated while decoding {context}")
            }
            Self::ChecksumMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} mismatch: stored {expected:#018x}, computed {got:#018x}"
            ),
            Self::Malformed { context } => write!(f, "malformed artifact: {context}"),
            Self::MissingSection { name } => {
                write!(f, "artifact is missing its {name} section")
            }
            Self::Io(e) => write!(f, "artifact I/O error: {e}"),
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ArtifactError::BadMagic.to_string().contains("magic"));
        let v = ArtifactError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
        let t = ArtifactError::Truncated {
            context: "section table",
        };
        assert!(t.to_string().contains("section table"));
        let c = ArtifactError::ChecksumMismatch {
            what: "file checksum",
            expected: 1,
            got: 2,
        };
        assert!(c.to_string().contains("file checksum"));
        assert!(ArtifactError::malformed("bad tag")
            .to_string()
            .contains("bad tag"));
        let io = ArtifactError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
    }
}
