//! Little-endian wire primitives: a growable writer, a strictly
//! bounds-checked reader, and the two checksums the container uses
//! (CRC-32/IEEE per section, FNV-1a-64 over the whole file).
//!
//! The reader is the artifact crate's safety boundary: every read is
//! bounds-checked, every length prefix is validated against the bytes
//! actually remaining *before* anything is allocated, and every decoder
//! must consume its payload exactly. Nothing here panics on untrusted
//! input.

use crate::error::ArtifactError;
use std::sync::OnceLock;

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Strictly bounds-checked little-endian reader over a borrowed slice.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// What this reader is decoding, for `Truncated` contexts.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if n > self.remaining() {
            return Err(ArtifactError::Truncated {
                context: self.context,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Strict boolean: any byte other than 0 or 1 is malformed, so a
    /// bit-flipped flag can never decode silently.
    pub fn bool(&mut self) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ArtifactError::malformed(format!(
                "{}: boolean byte {v} (expected 0 or 1)",
                self.context
            ))),
        }
    }

    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn i32(&mut self) -> Result<i32, ArtifactError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn i64(&mut self) -> Result<i64, ArtifactError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// u64 that must fit a `usize` on this platform.
    pub fn usize(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            ArtifactError::malformed(format!("{}: value {v} exceeds usize", self.context))
        })
    }

    /// A raw byte run of exactly `n` bytes — the bulk primitive behind
    /// the structure-of-arrays codecs, where one bounds check covers a
    /// whole tag or value array instead of one check per element.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.take(n)
    }

    /// Length-prefixed UTF-8 string; the length is validated against the
    /// remaining bytes before any allocation.
    pub fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::malformed(format!("{}: string is not UTF-8", self.context)))
    }

    /// A count prefix that claims `count` items of at least
    /// `min_item_bytes` each; rejected up front when the remaining bytes
    /// cannot possibly hold them, so corrupt counts never drive huge
    /// allocations.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, ArtifactError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(ArtifactError::Truncated {
                context: self.context,
            });
        }
        Ok(count)
    }

    /// The decoder must consume its payload exactly; stray trailing bytes
    /// mean the section is not what its length claims.
    pub fn finish(&self) -> Result<(), ArtifactError> {
        if self.remaining() != 0 {
            return Err(ArtifactError::malformed(format!(
                "{}: {} trailing bytes",
                self.context,
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// per-section integrity check.
///
/// Slice-by-8: eight table lanes let one loop iteration absorb eight
/// bytes with independent lookups, breaking the one-lookup-per-byte
/// dependency chain of the classic table-driven form. Same polynomial,
/// same values — only the schedule differs. Cold-start loads hash every
/// section, so this is on the deploy-from-file critical path.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        for lane in 1..8 {
            for i in 0..256 {
                let prev = t[lane - 1][i];
                t[lane][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    });
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes(c[..4].try_into().expect("len 4"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// FNV-1a 64-bit, byte-wise — the hash `eb-runtime` uses for per-model
/// seed derivation, and the seed of the whole-file checksum.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Continues an FNV-1a-64 chain by absorbing 64-bit little-endian words
/// (zero-padded tail), then the byte length.
///
/// Byte-wise FNV is a strict serial recurrence — one 64-bit multiply of
/// latency per byte — which made whole-file hashing the slowest part of
/// a cold-start load. Absorbing a word per step cuts the multiply chain
/// 8×. Detection is as strong as the byte-wise form for the failure
/// mode checksums exist to catch: xor-then-multiply-by-odd is a
/// bijection on `u64`, so any corruption confined to one word — any
/// single-bit flip — always changes the digest. Absorbing the length
/// last keeps zero-padded tails from colliding with truncations.
pub(crate) fn fnv1a64_words(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("len 8"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i32(-42);
        w.put_i64(i64::MIN + 1);
        w.put_f32(1.5);
        w.put_f64(-0.125);
        w.put_usize(999);
        w.put_str("héllo");
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.i64().unwrap(), i64::MIN + 1);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.usize().unwrap(), 999);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf, "test");
        assert!(matches!(r.u32(), Err(ArtifactError::Truncated { .. })));
        let mut r = ByteReader::new(&buf, "test");
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        let mut r = ByteReader::new(&[2u8], "test");
        assert!(matches!(r.bool(), Err(ArtifactError::Malformed { .. })));
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "test");
        assert!(matches!(r.str(), Err(ArtifactError::Malformed { .. })));
    }

    #[test]
    fn oversized_count_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf, "test");
        assert!(matches!(r.count(8), Err(ArtifactError::Truncated { .. })));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a64_matches_known_vector() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
