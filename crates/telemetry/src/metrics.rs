//! Lock-free metric handles — the pre-resolved atomics the hot path
//! touches.
//!
//! All three types are cheap clones of an `Arc`'d atomic core: clones
//! handed out by the [`Registry`](crate::Registry) for the same
//! `(name, labels)` share the same storage, so a worker thread bumping
//! its handle and a scrape reading the registry's see one value. Every
//! operation uses `Relaxed` ordering — telemetry rides the release/
//! acquire chains the serving data structures already establish (queue
//! mutexes, ticket condvars), so by the time a scrape *observes* a
//! completed request through those structures, its counter bumps are
//! visible too.

use crate::hist::{bucket_index, LatencyHistogram, MAX_BUCKETS};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` — one `AtomicU64`, `Relaxed` adds.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere) starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `f64` (stored as bits in one `AtomicU64`) — queue depths,
/// agreement ratios, uptimes.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A detached gauge (not registered anywhere) starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) via a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The concurrent twin of [`LatencyHistogram`]: a fixed array of
/// `AtomicU64` buckets (every bucket the log scheme can ever address,
/// ~15 KB) plus sum/min/max atomics. [`Histogram::record`] is four
/// `Relaxed` atomic RMWs with no branches on shared state — safe to
/// call from any number of threads; [`Histogram::snapshot`] reassembles
/// a mergeable [`LatencyHistogram`] whose total is derived from the
/// bucket counts, so a snapshot racing writers is still internally
/// consistent.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramCore {
            buckets: (0..MAX_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A detached histogram (not registered anywhere), empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value: bucket, sum, min, max — four `Relaxed` RMWs.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time [`LatencyHistogram`] of everything recorded so
    /// far (total derived from the bucket counts — see type docs).
    pub fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        LatencyHistogram::from_parts(
            counts,
            self.0.min.load(Ordering::Relaxed),
            self.0.max.load(Ordering::Relaxed),
            u128::from(self.0.sum.load(Ordering::Relaxed)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn counter_and_gauge_share_storage_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(9);
        assert_eq!(c.get(), 10);

        let g = Gauge::new();
        let g2 = g.clone();
        g.set(2.5);
        g2.add(-1.0);
        assert!((g.get() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_sequential_recording() {
        let h = Histogram::new();
        let mut want = LatencyHistogram::new();
        for v in [0u64, 1, 31, 32, 1000, 123_456, 9_999_999_999] {
            h.record(v);
            want.record(v);
        }
        assert_eq!(h.snapshot(), want);
    }

    #[test]
    fn extreme_values_keep_counts_and_bounds_exact() {
        // The atomic sum is a u64 and wraps on astronomical totals (a
        // non-issue for microsecond latencies); counts, min, max, and
        // quantiles stay exact regardless.
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), u64::MAX);
        assert!(snap.quantile(1.0) >= u64::MAX / 33 * 32);
    }

    #[test]
    fn empty_snapshot_is_the_default_histogram() {
        assert_eq!(Histogram::new().snapshot(), LatencyHistogram::new());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads = 4;
        let per_thread = 5_000u64;
        let barrier = Barrier::new(threads);
        thread::scope(|s| {
            for t in 0..threads as u64 {
                let h = h.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads as u64 * per_thread);
        let n = threads as u64 * per_thread;
        assert_eq!(snap.sum(), u128::from(n) * u128::from(n - 1) / 2);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), n - 1);
    }
}
