//! Per-request stage traces: one `Instant` plus six nanosecond
//! offsets, stamped as a request moves through the serving pipeline.

use std::time::Instant;

/// The pipeline stages a request moves through, in order. Net-served
/// requests stamp all six; requests submitted directly to a pool start
/// life at [`Stage::Enqueued`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Request read off the wire (HTTP head + body complete).
    Accepted = 0,
    /// Body parsed and validated into a tensor.
    Parsed = 1,
    /// Admitted into a pool's queue (re-stamped if a hot swap re-offers
    /// the request to a successor pool).
    Enqueued = 2,
    /// Claimed by a replica worker into a micro-batch.
    Batched = 3,
    /// Substrate execution of the micro-batch finished.
    Executed = 4,
    /// Result published to the ticket (waiter wakeable).
    Replied = 5,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// All stages, pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Accepted,
        Stage::Parsed,
        Stage::Enqueued,
        Stage::Batched,
        Stage::Executed,
        Stage::Replied,
    ];

    /// Lower-case stage name (label-value material).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::Parsed => "parsed",
            Stage::Enqueued => "enqueued",
            Stage::Batched => "batched",
            Stage::Executed => "executed",
            Stage::Replied => "replied",
        }
    }
}

/// Offset value marking a stage as not yet stamped.
const UNSET: u64 = u64::MAX;

/// A per-request stage clock: the `Instant` the request entered the
/// pipeline plus one nanosecond offset per [`Stage`]. `Copy` and
/// lock-free by construction — the trace travels *inside* the request
/// through the queues, so stamping is a plain array write by whichever
/// thread owns the request at that stage; only the final fold into the
/// shared histograms touches atomics.
#[derive(Clone, Copy, Debug)]
pub struct Trace {
    start: Instant,
    stamps: [u64; Stage::COUNT],
}

impl Trace {
    /// Starts a trace now, stamping [`Stage::Accepted`] at offset 0.
    pub fn begin() -> Self {
        let mut stamps = [UNSET; Stage::COUNT];
        stamps[Stage::Accepted as usize] = 0;
        Self {
            start: Instant::now(),
            stamps,
        }
    }

    /// Stamps `stage` at the current instant (overwriting any earlier
    /// stamp — a swap re-offer legitimately re-enqueues).
    pub fn stamp(&mut self, stage: Stage) {
        self.stamp_at(stage, Instant::now());
    }

    /// Stamps `stage` at `at` — lets one `Instant::now()` call stamp a
    /// whole micro-batch.
    pub fn stamp_at(&mut self, stage: Stage, at: Instant) {
        let ns = at.saturating_duration_since(self.start).as_nanos();
        self.stamps[stage as usize] = ns.min(u128::from(UNSET - 1)) as u64;
    }

    /// Whether `stage` has been stamped.
    pub fn stamped(&self, stage: Stage) -> bool {
        self.stamps[stage as usize] != UNSET
    }

    /// Nanosecond offset of `stage` from the trace start, if stamped.
    pub fn stamp_ns(&self, stage: Stage) -> Option<u64> {
        match self.stamps[stage as usize] {
            UNSET => None,
            ns => Some(ns),
        }
    }

    /// Nanosecond offset of an arbitrary `Instant` from the trace start
    /// (saturating at zero for instants before it) — how a worker
    /// relates a batch-wide timestamp to a request's stage stamps.
    pub fn offset_ns(&self, at: Instant) -> u64 {
        let ns = at.saturating_duration_since(self.start).as_nanos();
        ns.min(u128::from(UNSET - 1)) as u64
    }

    /// Nanoseconds from `from` to `to`, if both are stamped in order.
    pub fn span_ns(&self, from: Stage, to: Stage) -> Option<u64> {
        let (a, b) = (self.stamps[from as usize], self.stamps[to as usize]);
        if a == UNSET || b == UNSET || b < a {
            return None;
        }
        Some(b - a)
    }

    /// Microseconds from `from` to `to`, if both are stamped in order.
    pub fn span_us(&self, from: Stage, to: Stage) -> Option<u64> {
        self.span_ns(from, to).map(|ns| ns / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stages_stamp_in_order_and_span() {
        let mut t = Trace::begin();
        assert!(t.stamped(Stage::Accepted));
        assert!(!t.stamped(Stage::Enqueued));
        assert_eq!(t.span_us(Stage::Accepted, Stage::Replied), None);

        let base = Instant::now();
        t.stamp_at(Stage::Parsed, base + Duration::from_micros(10));
        t.stamp_at(Stage::Enqueued, base + Duration::from_micros(20));
        t.stamp_at(Stage::Batched, base + Duration::from_micros(120));
        t.stamp_at(Stage::Executed, base + Duration::from_micros(620));
        t.stamp_at(Stage::Replied, base + Duration::from_micros(630));

        let queue = t.span_us(Stage::Enqueued, Stage::Batched).unwrap();
        assert!((100..=101).contains(&queue), "queue span {queue}");
        let exec = t.span_us(Stage::Batched, Stage::Executed).unwrap();
        assert!((500..=501).contains(&exec), "execute span {exec}");
        assert!(t.span_ns(Stage::Accepted, Stage::Replied).unwrap() > 0);
    }

    #[test]
    fn reversed_or_missing_stamps_yield_none() {
        let mut t = Trace::begin();
        let base = Instant::now();
        t.stamp_at(Stage::Executed, base + Duration::from_micros(50));
        t.stamp_at(Stage::Batched, base + Duration::from_micros(500));
        assert_eq!(t.span_ns(Stage::Batched, Stage::Executed), None);
        assert_eq!(t.span_ns(Stage::Enqueued, Stage::Batched), None);
    }

    #[test]
    fn reenqueue_overwrites_the_stamp() {
        let mut t = Trace::begin();
        let base = Instant::now();
        t.stamp_at(Stage::Enqueued, base + Duration::from_micros(5));
        let first = t.span_ns(Stage::Accepted, Stage::Enqueued).unwrap();
        t.stamp_at(Stage::Enqueued, base + Duration::from_micros(500));
        assert!(t.span_ns(Stage::Accepted, Stage::Enqueued).unwrap() > first);
    }

    #[test]
    fn stamp_before_start_saturates_to_zero() {
        let mut t = Trace::begin();
        // An Instant taken before the trace started must not panic or
        // underflow.
        let earlier = Instant::now()
            .checked_sub(Duration::from_secs(1))
            .unwrap_or_else(Instant::now);
        t.stamp_at(Stage::Parsed, earlier);
        assert!(t.stamped(Stage::Parsed));
        assert_eq!(t.span_ns(Stage::Accepted, Stage::Parsed), Some(0));
    }
}
