//! A log-bucketed latency histogram (promoted from eb-bench's
//! tail-latency harness — eb-bench re-exports it unchanged).
//!
//! Values 0..32 are recorded exactly; above that, each power-of-two
//! octave is split into 32 sub-buckets, so any recorded value is
//! reconstructed within ~3% relative error while the whole `u64` range
//! fits in under 2k buckets. Unit-agnostic — the serving stack and the
//! load generator both feed it microseconds.

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;

/// Buckets needed to cover the full `u64` range — the fixed size of the
/// atomic [`Histogram`](crate::Histogram)'s bucket array.
pub(crate) const MAX_BUCKETS: usize = bucket_index(u64::MAX) + 1;

/// Fixed-memory histogram with bounded relative error (see module
/// docs). Buckets grow lazily up to ~1.9k entries for full `u64` range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Bucket index for `v`: identity below `SUBS`, log-bucketed above.
pub(crate) const fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v in [2^exp, 2^exp+1), exp >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) & (SUBS - 1);
    (((exp as u64 - SUB_BITS as u64) * SUBS) + SUBS + sub) as usize
}

/// Midpoint of bucket `index` — the value quantiles report.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let b = index - SUBS;
    let exp = (b / SUBS) as u32 + SUB_BITS;
    let sub = b % SUBS;
    let width = 1u64 << (exp - SUB_BITS);
    (1u64 << exp) + sub * width + width / 2
}

/// Smallest value landing in bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let b = index - SUBS;
    let exp = (b / SUBS) as u32 + SUB_BITS;
    let sub = b % SUBS;
    let width = 1u64 << (exp - SUB_BITS);
    (1u64 << exp) + sub * width
}

/// Largest value landing in bucket `index` (inclusive).
fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= MAX_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a snapshot from raw bucket counts (the atomic
    /// [`Histogram`](crate::Histogram)'s read path). The total is
    /// derived from the counts so the snapshot is internally consistent
    /// even when writers raced the reads.
    pub(crate) fn from_parts(counts: Vec<u64>, min: u64, max: u64, sum: u128) -> Self {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Self::default();
        }
        let mut h = Self {
            counts,
            total,
            min: if min == u64::MAX { 0 } else { min },
            max,
            sum,
        };
        while h.counts.last() == Some(&0) {
            h.counts.pop();
        }
        h
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        self.sum += u128::from(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of recorded values (exact sum), or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Number of recorded values whose *bucket* lies entirely at or
    /// below `bound` — the cumulative count a Prometheus
    /// `_bucket{le="bound"}` series reports. Monotone nondecreasing in
    /// `bound` by construction; values in the bucket straddling `bound`
    /// are excluded (an under-count of at most one bucket's ~3% width).
    pub fn count_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(idx, _)| bucket_upper(*idx) <= bound)
            .map(|(_, &count)| count)
            .sum()
    }

    /// Value at quantile `q` in `[0, 1]` — the recorded value whose rank
    /// is `ceil(q * count)`, reconstructed from its bucket (≲3% relative
    /// error above 32, exact below; clamped into `[min, max]`). Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (idx, &count) in other.counts.iter().enumerate() {
            self.counts[idx] += count;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_continuous() {
        // Index must be nondecreasing in v, and exact below 32.
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
            if v < 32 {
                assert_eq!(idx, v as usize);
                assert_eq!(bucket_value(idx), v);
            } else {
                // The midpoint stays within the bucket's ~3% width.
                let mid = bucket_value(idx) as f64;
                let err = (mid - v as f64).abs() / v as f64;
                assert!(err <= 1.0 / 32.0, "value {v} → midpoint {mid}");
            }
        }
    }

    #[test]
    fn bucket_edges_tile_the_u64_range() {
        assert_eq!(bucket_index(u64::MAX) + 1, MAX_BUCKETS);
        for idx in 0..MAX_BUCKETS {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo <= hi, "bucket {idx} inverted");
            assert_eq!(bucket_index(lo), idx, "lower edge of {idx}");
            assert_eq!(bucket_index(hi), idx, "upper edge of {idx}");
            if idx + 1 < MAX_BUCKETS {
                assert_eq!(bucket_lower(idx + 1), hi + 1, "gap after {idx}");
            }
        }
    }

    #[test]
    fn count_le_is_monotone_and_exact_at_edges() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        // Exact region: every bound below 32 is an exact cutoff.
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(31), 31);
        // A bucket upper edge is exact by definition.
        let edge = bucket_upper(bucket_index(5_000));
        assert_eq!(h.count_le(edge), edge.min(10_000));
        let mut prev = 0;
        for bound in (0..12_000u64).step_by(97) {
            let c = h.count_le(bound);
            assert!(c >= prev, "count_le regressed at {bound}");
            assert!(c <= h.count());
            prev = c;
        }
        assert_eq!(h.count_le(u64::MAX), h.count());
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, want) in [
            (0.5, 5_000.0),
            (0.9, 9_000.0),
            (0.99, 9_900.0),
            (0.999, 9_990.0),
        ] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - want).abs() / want <= 0.05,
                "q{q}: got {got}, want ~{want}"
            );
        }
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn small_exact_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in 0..500u64 {
            let v = v * v % 7919;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) >= u64::MAX / 33 * 32);
    }
}
