//! The process-wide metric registry: `(name, labels)` → handle, plus
//! the Prometheus text renderer.
//!
//! # Cardinality rules
//!
//! The registry never expires series, so label values must come from
//! small closed sets decided at deploy time: model names, replica
//! indices, error classes, stage names. Never label by request
//! content, client address, or anything unbounded.

use crate::hist::LatencyHistogram;
use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// Cumulative-bucket upper bounds the renderer exposes, in the unit the
/// histogram was recorded in (the serving stack records microseconds):
/// a coarse 1-2.5-5 ladder from 1 µs to 10 s, plus `+Inf`.
const LE_BOUNDS: [u64; 22] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric name: its kind, help text, and every label combination
/// registered under it. Label sets are sorted by label name, so render
/// order is deterministic.
struct Family {
    kind: Kind,
    help: String,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// The `(metric name, label set)` → atomic-handle map (see module docs
/// for the cardinality rules). Handle lookup takes the registry lock —
/// do it once at spin-up and keep the returned [`Counter`]/[`Gauge`]/
/// [`Histogram`] clones on the hot path, which then never locks.
///
/// Asking twice for the same `(name, labels)` returns handles sharing
/// the same storage. Asking for a name that exists under a *different*
/// kind is a caller bug: the registry returns a detached handle (valid
/// to use, visible nowhere) rather than corrupting the family, and
/// debug builds panic.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families = self.lock();
        f.debug_struct("Registry")
            .field("families", &families.len())
            .field(
                "series",
                &families.values().map(|fam| fam.series.len()).sum::<usize>(),
            )
            .finish()
    }
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    key.sort();
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series<H: Default + Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        wrap: impl Fn(H) -> Series,
        unwrap: impl Fn(&Series) -> Option<H>,
    ) -> H {
        let mut families = self.lock();
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            debug_assert!(
                false,
                "metric {name} registered as {} but requested as {}",
                family.kind.as_str(),
                kind.as_str()
            );
            return H::default();
        }
        let entry = family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| wrap(H::default()));
        // The `None` arm is unreachable: the family kind check above
        // already gates the variant. Hand back a detached handle anyway.
        unwrap(entry).unwrap_or_default()
    }

    /// The counter `name{labels}`, creating it (starting at 0) on first
    /// request. `help` is recorded on first registration of `name`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.series(
            name,
            help,
            labels,
            Kind::Counter,
            Series::Counter,
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, creating it (at 0) on first request.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.series(
            name,
            help,
            labels,
            Kind::Gauge,
            Series::Gauge,
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}`, creating it (empty) on first
    /// request.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.series(
            name,
            help,
            labels,
            Kind::Histogram,
            Series::Histogram,
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Snapshot of the histogram `name{labels}` if that series exists
    /// (without creating it) — how the serving layers read back stage
    /// distributions for JSON summaries.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<LatencyHistogram> {
        let families = self.lock();
        match families.get(name)?.series.get(&label_key(labels))? {
            Series::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Renders every registered series in the Prometheus text
    /// exposition format (version 0.0.4): families sorted by name, each
    /// with `# HELP`/`# TYPE` headers; histogram series expand into
    /// cumulative `_bucket{le=...}` lines (monotone by construction —
    /// each bound counts the internal buckets lying entirely at or
    /// below it), `_sum`, and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.lock();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        for bound in LE_BOUNDS {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {}",
                                render_labels(labels, Some(&bound.to_string())),
                                snap.count_le(bound)
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, Some("+Inf")),
                            snap.count()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            snap.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            snap.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// `{a="x",b="y"}`, with `le` appended last when given; empty string
/// for a label-free series.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Help-text escaping: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_storage() {
        let r = Registry::new();
        r.counter("hits_total", "Hits.", &[("model", "a")]).inc();
        r.counter("hits_total", "Hits.", &[("model", "a")]).add(2);
        // Label order must not matter.
        let c = r.counter("x", "X.", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(r.counter("x", "X.", &[("a", "1"), ("b", "2")]).get(), 1);
        assert!(r.render().contains("hits_total{model=\"a\"} 3"));
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        r.counter("hits_total", "Hits.", &[("model", "a")]).inc();
        r.counter("hits_total", "Hits.", &[("model", "b")]).add(5);
        let text = r.render();
        assert!(text.contains("hits_total{model=\"a\"} 1"));
        assert!(text.contains("hits_total{model=\"b\"} 5"));
        // One family header for both series.
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
    }

    #[test]
    fn render_covers_all_three_kinds() {
        let r = Registry::new();
        r.counter("c_total", "A counter.", &[]).inc();
        r.gauge("g", "A gauge.", &[]).set(0.75);
        let h = r.histogram("h_us", "A histogram.", &[("model", "m")]);
        h.record(3);
        h.record(40);
        let text = r.render();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 1"));
        assert!(text.contains("g 0.75"));
        assert!(text.contains("# TYPE h_us histogram"));
        // 3 ≤ 5 exactly; 40 lands in the straddling [40,41] bucket which
        // is entirely ≤ 50.
        assert!(text.contains("h_us_bucket{model=\"m\",le=\"5\"} 1"));
        assert!(text.contains("h_us_bucket{model=\"m\",le=\"50\"} 2"));
        assert!(text.contains("h_us_bucket{model=\"m\",le=\"+Inf\"} 2"));
        assert!(text.contains("h_us_sum{model=\"m\"} 43"));
        assert!(text.contains("h_us_count{model=\"m\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("e_total", "Esc.", &[("v", "a\"b\\c\nd")]).inc();
        assert!(r.render().contains("e_total{v=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_snapshot_reads_without_creating() {
        let r = Registry::new();
        assert!(r.histogram_snapshot("lat_us", &[("model", "m")]).is_none());
        r.histogram("lat_us", "Latency.", &[("model", "m")])
            .record(7);
        let snap = r.histogram_snapshot("lat_us", &[("model", "m")]).unwrap();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.min(), 7);
    }
}
