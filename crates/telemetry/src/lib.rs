//! # eb-telemetry — the observability core
//!
//! Std-only (no dependencies) telemetry for the serving stack, built
//! around three ideas:
//!
//! * **Pre-resolved handles.** A process-wide [`Registry`] maps
//!   `(metric name, label set)` to lock-free handles — [`Counter`] and
//!   [`Gauge`] are single `AtomicU64`s, [`Histogram`] a fixed array of
//!   them. Lookup (which takes a lock) happens once at pool spin-up;
//!   the hot path only ever touches the pre-resolved atomics with
//!   `Relaxed` ordering, so recording costs a handful of uncontended
//!   atomic adds.
//! * **Mergeable log-bucketed histograms.** [`LatencyHistogram`] (the
//!   snapshot form, promoted here from eb-bench's tail-latency harness)
//!   records any `u64` within ~3% relative error in under 2k buckets;
//!   [`Histogram`] is its concurrent atomic twin, snapshotting into a
//!   `LatencyHistogram` for quantiles and merging.
//! * **Per-request stage traces.** A [`Trace`] is a `Copy` value — one
//!   `Instant` plus six nanosecond offsets — stamped as a request moves
//!   accepted → parsed → enqueued → batched → executed → replied
//!   ([`Stage`]). The serving layers carry it inside the request and
//!   fold the stage spans into per-stage histograms at completion.
//!
//! [`Registry::render`] emits the Prometheus text exposition format
//! (`# HELP`/`# TYPE`, cumulative `_bucket{le=...}` series, escaped
//! label values), suitable for a `GET /metrics` scrape endpoint.
//!
//! ```
//! use eb_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let served = registry.counter("served_total", "Requests served.", &[("model", "demo")]);
//! let lat = registry.histogram("latency_us", "End-to-end latency.", &[("model", "demo")]);
//! served.inc();
//! lat.record(420);
//! let text = registry.render();
//! assert!(text.contains("served_total{model=\"demo\"} 1"));
//! assert!(text.contains("latency_us_count{model=\"demo\"} 1"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod metrics;
mod registry;
mod trace;

pub use hist::LatencyHistogram;
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::Registry;
pub use trace::{Stage, Trace};
