//! Property tests for the Prometheus text exposition renderer: every
//! line is well-formed, histogram cumulative buckets are monotone with
//! `+Inf` equal to the count, and arbitrary label values survive the
//! escape/unescape round trip.

use eb_telemetry::Registry;
use proptest::prelude::*;

/// A parsed sample line: metric name, labels (unescaped), value.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn is_valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one `name{labels} value` sample line, unescaping label
/// values; panics (failing the property) on any malformed syntax.
fn parse_sample(line: &str) -> Sample {
    let (name_and_labels, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value.parse().expect("numeric value");
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("closing brace");
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            loop {
                // label name up to '='
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                assert!(is_valid_metric_name(&key), "label name {key:?}");
                assert_eq!(chars.next(), Some('"'), "opening quote");
                // escaped value up to the closing quote
                let mut val = String::new();
                loop {
                    match chars.next().expect("unterminated label value") {
                        '"' => break,
                        '\\' => match chars.next().expect("dangling escape") {
                            '\\' => val.push('\\'),
                            '"' => val.push('"'),
                            'n' => val.push('\n'),
                            other => panic!("bad escape \\{other}"),
                        },
                        '\n' => panic!("raw newline in label value"),
                        c => val.push(c),
                    }
                }
                labels.push((key, val));
                match chars.next() {
                    None => break,
                    Some(',') => continue,
                    Some(other) => panic!("unexpected {other:?} after label"),
                }
            }
            (name.to_owned(), labels)
        }
    };
    assert!(is_valid_metric_name(&name), "metric name {name:?}");
    Sample {
        name,
        labels,
        value,
    }
}

/// Parses a full exposition: checks HELP/TYPE headers and returns all
/// sample lines.
fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines");
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = rest.split_once(' ').expect("comment keyword");
            assert!(keyword == "HELP" || keyword == "TYPE", "keyword {keyword}");
            let name = rest.split(' ').next().expect("metric name");
            assert!(is_valid_metric_name(name), "header name {name:?}");
            if keyword == "TYPE" {
                let kind = rest.split(' ').nth(1).expect("type kind");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "kind {kind}"
                );
            }
        } else {
            samples.push(parse_sample(line));
        }
    }
    samples
}

fn label_value() -> impl Strategy<Value = String> {
    // Printable ASCII plus the three characters the escaper must
    // handle, and a few multi-byte ones.
    proptest::collection::vec(
        prop_oneof![
            (32u8..127).prop_map(|b| b as char),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('µ'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #[test]
    fn counters_and_gauges_render_and_round_trip(
        entries in proptest::collection::vec(
            (0usize..4, label_value(), 0u64..1_000_000), 1..8),
        gauge_v in -1e9f64..1e9,
    ) {
        let names = ["requests_total", "errors_total", "served_total", "shed_total"];
        let registry = Registry::new();
        for (which, label, v) in &entries {
            registry
                .counter(names[*which], "A counter.", &[("model", label)])
                .add(*v);
        }
        registry.gauge("depth", "A gauge.", &[]).set(gauge_v);
        let samples = parse_exposition(&registry.render());

        // Every registered (name, label) series appears exactly once,
        // with the label value restored verbatim by unescaping.
        for (which, label, _) in &entries {
            let matching: Vec<&Sample> = samples
                .iter()
                .filter(|s| {
                    s.name == names[*which]
                        && s.labels == vec![("model".to_owned(), label.clone())]
                })
                .collect();
            prop_assert_eq!(matching.len(), 1, "series {}/{:?}", names[*which], label);
        }
        let g = samples.iter().find(|s| s.name == "depth").expect("gauge");
        prop_assert!((g.value - gauge_v).abs() <= gauge_v.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_sum_to_count(
        values in proptest::collection::vec(0u64..50_000_000, 0..200),
    ) {
        let registry = Registry::new();
        let h = registry.histogram("lat_us", "Latency.", &[("model", "m")]);
        for v in &values {
            h.record(*v);
        }
        let samples = parse_exposition(&registry.render());

        let le_of = |s: &Sample| -> Option<String> {
            s.labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
        };
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "lat_us_bucket")
            .collect();
        prop_assert!(buckets.len() >= 2, "at least one bound plus +Inf");
        // Cumulative counts are monotone in render order (ascending le).
        let mut prev = 0.0;
        for b in &buckets {
            prop_assert!(b.value >= prev, "bucket regressed at le={:?}", le_of(b));
            prev = b.value;
        }
        let inf = buckets.last().expect("+Inf bucket");
        let inf_le = le_of(inf);
        prop_assert_eq!(inf_le.as_deref(), Some("+Inf"));
        let count = samples
            .iter()
            .find(|s| s.name == "lat_us_count")
            .expect("count");
        prop_assert_eq!(inf.value, count.value);
        prop_assert_eq!(count.value, values.len() as f64);
        let sum = samples
            .iter()
            .find(|s| s.name == "lat_us_sum")
            .expect("sum");
        prop_assert_eq!(sum.value, values.iter().sum::<u64>() as f64);
    }
}
