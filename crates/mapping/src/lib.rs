//! # eb-mapping — TacitMap and CustBinaryMap
//!
//! The paper's Section III: data mappings that realize the BNN
//! XNOR+Popcount (Eq. 1) on VMM-capable crossbars.
//!
//! * [`TacitMapped`] — the proposed mapping: weight vectors vertical in
//!   1T1R columns with complements below; one crossbar activation reads
//!   *all* popcounts from the ADCs (1 step, column-parallel).
//! * [`CustBinaryMapped`] — the SotA baseline (Hirtzlin et al.): weight
//!   vectors horizontal in 2T2R rows, PCSA single-bit readout, digital
//!   5-bit counters + popcount tree; `n` weight vectors take `n` steps.
//! * [`plan`] — the geometry/step planner used by the accelerator cost
//!   models: footprints, replication within a chip budget, step counts
//!   (including the WDM-enabled MMM variant).
//!
//! Both functional mappers run on the real analog crossbar simulation of
//! `eb-xbar` and are verified bit-exactly against the `eb-bitnn` software
//! kernels in their noiseless configurations.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod custbinary;
mod error;
pub mod plan;
mod tacitmap;

pub use custbinary::CustBinaryMapped;
pub use error::MappingError;
pub use plan::{
    plan_custbinary, plan_tacitmap, plan_wdm_tacitmap, MappingKind, MappingPlan, Workload,
};
pub use tacitmap::{SeededTacitMapped, TacitMapped};
