//! Error types for the mapping crate.

use eb_xbar::XbarError;
use std::error::Error;
use std::fmt;

/// Errors produced while programming or executing a mapped layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MappingError {
    /// Weight matrix had zero rows or columns.
    EmptyWeights,
    /// Crossbar configuration cannot hold a single mapped bit.
    CrossbarTooSmall {
        /// Configured rows.
        rows: usize,
        /// Configured columns.
        cols: usize,
    },
    /// Input vector length did not match the mapped fan-in.
    InputLength {
        /// Mapped fan-in.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// A verified execution disagreed with the software reference.
    Mismatch {
        /// Which mapping detected the mismatch.
        mapping: &'static str,
    },
    /// An underlying crossbar error.
    Xbar(XbarError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyWeights => write!(f, "weight matrix is empty"),
            Self::CrossbarTooSmall { rows, cols } => {
                write!(f, "{rows}×{cols} crossbar cannot hold the mapping")
            }
            Self::InputLength { expected, got } => {
                write!(f, "input has length {got}, mapped fan-in is {expected}")
            }
            Self::Mismatch { mapping } => {
                write!(
                    f,
                    "{mapping} execution disagreed with the software reference"
                )
            }
            Self::Xbar(e) => write!(f, "crossbar error: {e}"),
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Xbar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbarError> for MappingError {
    fn from(e: XbarError) -> Self {
        Self::Xbar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_xbar_errors_with_source() {
        let inner = XbarError::DimensionMismatch {
            what: "row drive",
            expected: 4,
            got: 5,
        };
        let e = MappingError::from(inner.clone());
        assert!(e.to_string().contains("crossbar error"));
        assert!(e.source().is_some());
        assert_eq!(e, MappingError::Xbar(inner));
    }
}
