//! Mapping geometry and step plans.
//!
//! This module answers, for each mapping, the questions the performance
//! model needs (DESIGN.md "Performance model"): how many crossbars does a
//! layer occupy, how far can it be replicated within a chip budget, and
//! how many crossbar steps does a workload of `v` input vectors take.

use eb_xbar::XbarConfig;

/// One matrix workload: `n` weight vectors of `m` bits applied to
/// `vectors` input vectors (batch × sliding windows), with `input_bits`
/// activation precision (1 for hidden layers, 8 for the first layer —
/// streamed bit-serially).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Weight-vector length (fan-in).
    pub m: usize,
    /// Number of weight vectors (outputs).
    pub n: usize,
    /// Total input vectors to process.
    pub vectors: u64,
    /// Activation operand bits (bit-serial streaming multiplies steps).
    pub input_bits: u8,
    /// Weight operand bits (bit-sliced across columns; multiplies the
    /// footprint, e.g. the 8-bit output layer).
    pub weight_bits: u8,
}

impl Workload {
    /// A fully binary workload.
    pub fn binary(m: usize, n: usize, vectors: u64) -> Self {
        Self {
            m,
            n,
            vectors,
            input_bits: 1,
            weight_bits: 1,
        }
    }
}

/// Which mapping produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// The paper's TacitMap (Section III) on an electronic crossbar.
    TacitMap,
    /// The SotA baseline CustBinaryMap (Hirtzlin et al.).
    CustBinaryMap,
    /// TacitMap on an oPCM crossbar with WDM capacity `K` (EinsteinBarrier).
    WdmTacitMap,
}

/// The resource/step plan of one workload under one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingPlan {
    /// Mapping that produced this plan.
    pub kind: MappingKind,
    /// Crossbars needed to hold the weights once.
    pub footprint: usize,
    /// Copies of the weights placed within the chip budget.
    pub replicas: usize,
    /// Total crossbar steps for the whole workload.
    pub steps: u64,
    /// Crossbar activations (footprint crossbars fire per step per replica
    /// actually used).
    pub activations: u64,
    /// ADC conversions per step across the active footprint (TacitMap
    /// variants; 0 for CustBinaryMap).
    pub conversions_per_step: u64,
    /// PCSA senses per step across the active footprint (CustBinaryMap;
    /// 0 for TacitMap variants).
    pub senses_per_step: u64,
    /// Rows driven per crossbar per step.
    pub rows_driven: usize,
    /// Popcount-tree depth drained once per output vector (CustBinaryMap).
    pub tree_depth: u32,
    /// Wavelengths actually used per step (1 for electronic mappings).
    pub wavelengths_used: usize,
}

impl MappingPlan {
    /// Average input vectors retired per step — the parallelism achieved.
    pub fn vectors_per_step(&self, w: &Workload) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            w.vectors as f64 / self.steps as f64
        }
    }
}

/// Plans a workload under TacitMap (paper Fig. 3-(b)).
///
/// Weight vectors sit vertically: `rows/2` weight bits per column (vector
/// plus complement), `cols` weight vectors per crossbar. One activation
/// computes every stored popcount, so a replica retires one input vector
/// per step (× `input_bits` for bit-serial activations).
///
/// # Panics
///
/// Panics if the workload or budget is degenerate (zero dimensions).
pub fn plan_tacitmap(w: &Workload, xbar: &XbarConfig, budget: usize) -> MappingPlan {
    plan_tacit_common(w, xbar, budget, 1, MappingKind::TacitMap)
}

/// Plans a workload under TacitMap on a WDM-enabled oPCM crossbar with
/// capacity `k` (EinsteinBarrier): up to `k` input vectors ride distinct
/// wavelengths through the same crossbar per step.
///
/// # Panics
///
/// Panics if `k == 0` or the workload/budget is degenerate.
pub fn plan_wdm_tacitmap(w: &Workload, xbar: &XbarConfig, budget: usize, k: usize) -> MappingPlan {
    assert!(k > 0, "WDM capacity must be positive");
    plan_tacit_common(w, xbar, budget, k, MappingKind::WdmTacitMap)
}

fn plan_tacit_common(
    w: &Workload,
    xbar: &XbarConfig,
    budget: usize,
    k: usize,
    kind: MappingKind,
) -> MappingPlan {
    assert!(w.m > 0 && w.n > 0, "degenerate workload");
    assert!(budget > 0, "empty crossbar budget");
    let chunk = xbar.tacitmap_chunk_rows().max(1);
    let row_chunks = w.m.div_ceil(chunk);
    // Multi-bit weights are bit-sliced across column groups.
    let col_slots = w.n * w.weight_bits as usize;
    let col_chunks = col_slots.div_ceil(xbar.cols);
    let footprint = row_chunks * col_chunks;
    let replicas = (budget / footprint).max(1);

    // Input vectors are grouped K per wavelength frame, frames spread over
    // replicas; each group costs `input_bits` bit-serial sub-steps.
    let groups = w.vectors.div_ceil(k as u64);
    let steps = groups.div_ceil(replicas as u64) * u64::from(w.input_bits);
    let active_replicas = (groups.min(replicas as u64)).max(1);
    let activations = steps * footprint as u64 * active_replicas;

    // Every column of every active crossbar is converted once per step per
    // wavelength in flight.
    let k_eff = (w.vectors.min(k as u64)).max(1) as usize;
    let conversions_per_step = (col_slots.min(xbar.cols) as u64 * row_chunks as u64 * k_eff as u64)
        .max(col_slots as u64 * row_chunks as u64);

    MappingPlan {
        kind,
        footprint,
        replicas,
        steps,
        activations,
        conversions_per_step,
        senses_per_step: 0,
        rows_driven: (2 * w.m.min(chunk)).min(xbar.rows),
        tree_depth: 0,
        wavelengths_used: k_eff,
    }
}

/// Plans a workload under CustBinaryMap (paper Fig. 3-(a)).
///
/// Weight vectors sit horizontally on 2T2R rows (`cols/2` weight bits per
/// row), one vector per row; a PCSA step reads **one row**, so a replica
/// needs `min(n·weight_bits, rows)` sequential steps per input vector
/// (weight groups beyond `rows` land on parallel crossbars).
///
/// # Panics
///
/// Panics if the workload or budget is degenerate.
pub fn plan_custbinary(w: &Workload, xbar: &XbarConfig, budget: usize) -> MappingPlan {
    assert!(w.m > 0 && w.n > 0, "degenerate workload");
    assert!(budget > 0, "empty crossbar budget");
    let bits_per_row = xbar.custbinary_chunk_cols().max(1);
    let vec_chunks = w.m.div_ceil(bits_per_row);
    let row_slots = w.n * w.weight_bits as usize;
    let weight_groups = row_slots.div_ceil(xbar.rows);
    let footprint = vec_chunks * weight_groups;
    let replicas = (budget / footprint).max(1);

    let rows_per_group = row_slots.min(xbar.rows) as u64;
    let steps_per_vector = rows_per_group * u64::from(w.input_bits);
    let vector_rounds = w.vectors.div_ceil(replicas as u64);
    let steps = vector_rounds * steps_per_vector;
    let active_replicas = (w.vectors.min(replicas as u64)).max(1);
    // One row per crossbar of the active footprint fires per step.
    let activations = steps * footprint as u64 * active_replicas;

    // Each step senses every stored bit of one weight vector.
    let senses_per_step = w.m as u64;
    let tree_depth = if w.m <= 1 {
        0
    } else {
        usize::BITS - (w.m - 1).leading_zeros()
    };

    MappingPlan {
        kind: MappingKind::CustBinaryMap,
        footprint,
        replicas,
        steps,
        activations,
        conversions_per_step: 0,
        senses_per_step,
        rows_driven: 1,
        tree_depth,
        wavelengths_used: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> XbarConfig {
        XbarConfig::new(256, 256)
    }

    #[test]
    fn tacitmap_single_crossbar_layer() {
        // 128-bit vectors, 256 outputs: fits exactly one crossbar.
        let w = Workload::binary(128, 256, 64);
        let p = plan_tacitmap(&w, &xbar(), 128);
        assert_eq!(p.footprint, 1);
        assert_eq!(p.replicas, 128);
        // 64 vectors over 128 replicas: one step.
        assert_eq!(p.steps, 1);
    }

    #[test]
    fn tacitmap_chunks_larger_layers() {
        // m=500 ⇒ 4 row chunks of ≤128; n=1000 ⇒ 4 column chunks.
        let w = Workload::binary(500, 1000, 1);
        let p = plan_tacitmap(&w, &xbar(), 128);
        assert_eq!(p.footprint, 16);
        assert_eq!(p.replicas, 8);
        assert_eq!(p.steps, 1);
    }

    #[test]
    fn custbinary_serializes_weight_vectors() {
        let w = Workload::binary(128, 250, 1);
        let p = plan_custbinary(&w, &xbar(), 128);
        // One vector of 128 bits per 2T2R row (128 = 256/2 bits per row).
        assert_eq!(p.footprint, 1);
        // 250 weight vectors scanned sequentially.
        assert_eq!(p.steps, 250);
        assert_eq!(p.senses_per_step, 128);
        assert_eq!(p.tree_depth, 7);
    }

    #[test]
    fn custbinary_weight_groups_run_parallel() {
        // 512 weight vectors over 256-row crossbars: 2 groups in parallel,
        // still 256 sequential steps.
        let w = Workload::binary(128, 512, 1);
        let p = plan_custbinary(&w, &xbar(), 128);
        assert_eq!(p.footprint, 2);
        assert_eq!(p.steps, 256);
    }

    #[test]
    fn tacitmap_beats_custbinary_in_steps() {
        // The theoretical claim of Section III: up to n× fewer steps.
        for (m, n) in [(128usize, 256usize), (784, 500), (2000, 1500)] {
            let w = Workload::binary(m, n, 100);
            let t = plan_tacitmap(&w, &xbar(), 128);
            let c = plan_custbinary(&w, &xbar(), 128);
            assert!(
                t.steps < c.steps,
                "({m},{n}): tacit {} vs cust {}",
                t.steps,
                c.steps
            );
        }
    }

    #[test]
    fn wdm_divides_steps_by_k() {
        let w = Workload::binary(128, 256, 4096);
        let t = plan_tacitmap(&w, &xbar(), 1);
        let e = plan_wdm_tacitmap(&w, &xbar(), 1, 16);
        assert_eq!(t.steps, 4096);
        assert_eq!(e.steps, 256);
        assert_eq!(e.wavelengths_used, 16);
    }

    #[test]
    fn wdm_gain_erodes_when_replicas_cover_batch() {
        // The paper's observation 3: the achieved gain is below K when the
        // workload cannot fill all wavelengths × replicas.
        let w = Workload::binary(128, 256, 16);
        let t = plan_tacitmap(&w, &xbar(), 128);
        let e = plan_wdm_tacitmap(&w, &xbar(), 128, 16);
        // 16 vectors over 128 replicas: TacitMap already takes 1 step.
        assert_eq!(t.steps, 1);
        assert_eq!(e.steps, 1);
    }

    #[test]
    fn bit_serial_input_multiplies_steps() {
        let mut w = Workload::binary(784, 500, 10);
        w.input_bits = 8;
        let t1 = plan_tacitmap(&Workload::binary(784, 500, 10), &xbar(), 16);
        let t8 = plan_tacitmap(&w, &xbar(), 16);
        assert_eq!(t8.steps, 8 * t1.steps);
    }

    #[test]
    fn weight_bits_expand_footprint() {
        let mut w = Workload::binary(250, 10, 1);
        w.weight_bits = 8;
        let p = plan_tacitmap(&w, &xbar(), 128);
        // 10 outputs × 8 bit-slices = 80 column slots: still one chunk,
        // but compare with a 256-output layer needing one full crossbar.
        assert_eq!(p.footprint, 2); // 250 bits ⇒ 2 row chunks × 1 col chunk
        let mut w2 = Workload::binary(250, 40, 1);
        w2.weight_bits = 8;
        let p2 = plan_tacitmap(&w2, &xbar(), 128);
        assert_eq!(p2.footprint, 4); // 320 col slots ⇒ 2 col chunks
    }

    #[test]
    fn vectors_per_step_reports_parallelism() {
        let w = Workload::binary(128, 256, 4096);
        let e = plan_wdm_tacitmap(&w, &xbar(), 1, 16);
        assert!((e.vectors_per_step(&w) - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_workload_rejected() {
        let _ = plan_tacitmap(&Workload::binary(0, 10, 1), &xbar(), 4);
    }
}
