//! Functional CustBinaryMap: the SotA baseline mapping of Hirtzlin et al.
//! ("Digital biologically plausible implementation of BNNs with
//! differential hafnium oxide resistive memory arrays"), as characterised
//! by the paper's Fig. 2-(a)/Fig. 3-(a).
//!
//! Weight vectors sit **horizontally**, one per 2T2R row, each bit stored
//! as a complementary device pair `(w, w̄)`. Reading row `r` with the
//! input applied to the precharge sense amplifiers yields the XNOR bits of
//! one input/weight vector pair; a 5-bit counter per column plus a
//! popcount tree then produce the popcount **digitally**. Processing `n`
//! weight vectors takes `n` sequential row steps — the serialization
//! TacitMap removes.

use crate::error::MappingError;
use eb_bitnn::{ops, BitMatrix, BitVec};
use eb_xbar::{CrossbarArray, Pcsa, PopcountTree, XbarConfig};
use rand::Rng;

/// A binary weight matrix programmed in CustBinaryMap (2T2R) layout.
///
/// # Examples
///
/// ```
/// use eb_mapping::CustBinaryMapped;
/// use eb_bitnn::{ops, BitMatrix, BitVec};
/// use eb_xbar::XbarConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let weights = BitMatrix::from_fn(4, 6, |r, c| (r * c) % 3 == 1);
/// let mut mapped =
///     CustBinaryMapped::program(&weights, &XbarConfig::new(8, 16), &mut rng)?;
/// let input = BitVec::from_bools(&[true, true, false, true, false, false]);
/// let pops = mapped.execute(&input, &mut rng)?;
/// assert_eq!(pops, ops::binary_linear_popcounts(&input, &weights));
/// // n weight vectors ⇒ n sequential PCSA steps.
/// assert_eq!(mapped.steps_taken(), 4);
/// # Ok::<(), eb_mapping::MappingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CustBinaryMapped {
    /// `arrays[weight_group][vec_chunk]`.
    arrays: Vec<Vec<CrossbarArray>>,
    pcsa: Pcsa,
    tree: PopcountTree,
    m: usize,
    n: usize,
    bits_per_row: usize,
    steps: u64,
    cfg: XbarConfig,
}

impl CustBinaryMapped {
    /// Programs `weights` (one weight vector per row) into interleaved
    /// 2T2R rows.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::EmptyWeights`] for an empty matrix or
    /// [`MappingError::CrossbarTooSmall`] when a crossbar cannot hold one
    /// 2T2R bit.
    pub fn program(
        weights: &BitMatrix,
        cfg: &XbarConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, MappingError> {
        if weights.rows() == 0 || weights.cols() == 0 {
            return Err(MappingError::EmptyWeights);
        }
        let bits_per_row = cfg.custbinary_chunk_cols();
        if bits_per_row == 0 || cfg.rows == 0 {
            return Err(MappingError::CrossbarTooSmall {
                rows: cfg.rows,
                cols: cfg.cols,
            });
        }
        let m = weights.cols();
        let n = weights.rows();
        let vec_chunks = m.div_ceil(bits_per_row);
        let weight_groups = n.div_ceil(cfg.rows);
        let mut arrays = Vec::with_capacity(weight_groups);
        for g in 0..weight_groups {
            let rlo = g * cfg.rows;
            let rhi = (rlo + cfg.rows).min(n);
            let mut group = Vec::with_capacity(vec_chunks);
            for vc in 0..vec_chunks {
                let blo = vc * bits_per_row;
                let bhi = (blo + bits_per_row).min(m);
                // Interleave w and w̄: bit b of the chunk occupies device
                // columns (2b, 2b+1).
                let block = BitMatrix::from_fn(rhi - rlo, 2 * (bhi - blo), |r, dc| {
                    let bit = weights.get(rlo + r, blo + dc / 2) == Some(true);
                    if dc % 2 == 0 {
                        bit
                    } else {
                        !bit
                    }
                });
                let mut array = CrossbarArray::new(cfg.rows, cfg.cols, cfg.device.clone());
                array
                    .program_matrix(&block, rng)
                    .map_err(MappingError::Xbar)?;
                group.push(array);
            }
            arrays.push(group);
        }
        Ok(Self {
            arrays,
            pcsa: Pcsa::ideal(),
            tree: PopcountTree::paper_default(),
            m,
            n,
            bits_per_row,
            steps: 0,
            cfg: cfg.clone(),
        })
    }

    /// Replaces the ideal PCSA (e.g. to inject sense-offset noise).
    pub fn set_pcsa(&mut self, pcsa: Pcsa) {
        self.pcsa = pcsa;
    }

    /// Fan-in.
    pub fn fan_in(&self) -> usize {
        self.m
    }

    /// Stored weight vectors.
    pub fn out_vectors(&self) -> usize {
        self.n
    }

    /// Crossbars occupied.
    pub fn footprint(&self) -> usize {
        self.arrays.iter().map(Vec::len).sum()
    }

    /// Sequential PCSA row steps taken so far. Weight groups on different
    /// crossbars step in parallel, so one `execute` adds
    /// `min(n, rows)` steps.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Reads the XNOR bits of `input` against stored weight vector `j` —
    /// one PCSA row step (within one weight group).
    fn read_xnor_row(&self, j: usize, input: &BitVec, rng: &mut impl Rng) -> Vec<bool> {
        let g = j / self.cfg.rows;
        let local = j % self.cfg.rows;
        let mut bits = Vec::with_capacity(self.m);
        for (vc, array) in self.arrays[g].iter().enumerate() {
            let blo = vc * self.bits_per_row;
            let bhi = (blo + self.bits_per_row).min(self.m);
            for b in 0..(bhi - blo) {
                let straight = array.read_conductance(local, 2 * b, rng);
                let comp = array.read_conductance(local, 2 * b + 1, rng);
                // The input bit swaps which branch the PCSA treats as
                // positive, realizing XNOR in the sense operation.
                let bit = if input.get(blo + b) == Some(true) {
                    self.pcsa.sense(straight, comp, rng)
                } else {
                    self.pcsa.sense(comp, straight, rng)
                };
                bits.push(bit);
            }
        }
        bits
    }

    /// Executes one input vector: `min(n, rows)` sequential PCSA row steps
    /// plus digital popcounts, returning `popcount(input ⊙ Wⱼ)` for every
    /// `j`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on fan-in mismatch.
    pub fn execute(
        &mut self,
        input: &BitVec,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, MappingError> {
        if input.len() != self.m {
            return Err(MappingError::InputLength {
                expected: self.m,
                got: input.len(),
            });
        }
        let mut out = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let bits = self.read_xnor_row(j, input, rng);
            let (pop, _depth) = self.tree.reduce(&bits);
            out.push(pop);
        }
        // Weight groups proceed in parallel crossbars; the critical path is
        // the largest group.
        self.steps += self.n.min(self.cfg.rows) as u64;
        Ok(out)
    }

    /// Reference check against the software kernel.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::Mismatch`] on any disagreement with
    /// [`ops::binary_linear_popcounts`].
    pub fn execute_verified(
        &mut self,
        input: &BitVec,
        weights: &BitMatrix,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, MappingError> {
        let got = self.execute(input, rng)?;
        let want = ops::binary_linear_popcounts(input, weights);
        if got != want {
            return Err(MappingError::Mismatch {
                mapping: "CustBinaryMap",
            });
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn random_bits(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        BitMatrix::from_fn(rows, cols, |r, c| {
            (seed.wrapping_mul((r * cols + c) as u64 + 29)) % 5 < 2
        })
    }

    #[test]
    fn single_crossbar_exact() {
        let mut r = rng();
        let w = random_bits(6, 8, 3);
        let mut mapped = CustBinaryMapped::program(&w, &XbarConfig::new(8, 16), &mut r).unwrap();
        assert_eq!(mapped.footprint(), 1);
        let input = BitVec::from_bools(&[true, false, true, true, false, false, true, true]);
        let got = mapped.execute(&input, &mut r).unwrap();
        assert_eq!(got, ops::binary_linear_popcounts(&input, &w));
        assert_eq!(mapped.steps_taken(), 6);
    }

    #[test]
    fn vector_chunked_exact() {
        // fan-in 50 over 2T2R rows of 8 bits: 7 chained crossbars.
        let mut r = rng();
        let w = random_bits(4, 50, 7);
        let cfg = XbarConfig::new(8, 16); // 8 bits per row
        let mut mapped = CustBinaryMapped::program(&w, &cfg, &mut r).unwrap();
        assert_eq!(mapped.footprint(), 7);
        let input = BitVec::from_bools(&(0..50).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let got = mapped.execute_verified(&input, &w, &mut r).unwrap();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn weight_grouped_exact_and_steps_parallel() {
        // 20 weight vectors on 8-row crossbars: 3 groups in parallel; steps
        // per execute = min(n, rows) = 8.
        let mut r = rng();
        let w = random_bits(20, 8, 11);
        let cfg = XbarConfig::new(8, 16);
        let mut mapped = CustBinaryMapped::program(&w, &cfg, &mut r).unwrap();
        assert_eq!(mapped.footprint(), 3);
        let input = BitVec::from_bools(&(0..8).map(|i| i % 2 == 1).collect::<Vec<_>>());
        let got = mapped.execute(&input, &mut r).unwrap();
        assert_eq!(got, ops::binary_linear_popcounts(&input, &w));
        assert_eq!(mapped.steps_taken(), 8);
    }

    #[test]
    fn stored_devices_are_complementary() {
        let mut r = rng();
        let w = random_bits(3, 4, 13);
        let cfg = XbarConfig::new(4, 8);
        let mapped = CustBinaryMapped::program(&w, &cfg, &mut r).unwrap();
        let array = &mapped.arrays[0][0];
        for row in 0..3 {
            for b in 0..4 {
                let s = array.stored_bit(row, 2 * b).unwrap();
                let c = array.stored_bit(row, 2 * b + 1).unwrap();
                assert_ne!(s, c, "device pair ({row}, {b}) not complementary");
                assert_eq!(Some(s), w.get(row, b));
            }
        }
    }

    #[test]
    fn noisy_pcsa_causes_bit_errors() {
        let mut r = rng();
        let w = random_bits(8, 64, 17);
        let cfg = XbarConfig::new(16, 128);
        let mut mapped = CustBinaryMapped::program(&w, &cfg, &mut r).unwrap();
        // Offset comparable to the on/off current difference.
        mapped.set_pcsa(Pcsa::with_offset(60e-6));
        let input = BitVec::from_bools(&(0..64).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let want = ops::binary_linear_popcounts(&input, &w);
        let mut mismatches = 0;
        for _ in 0..20 {
            if mapped.execute(&input, &mut r).unwrap() != want {
                mismatches += 1;
            }
        }
        assert!(mismatches > 0, "large PCSA offset should corrupt reads");
    }

    #[test]
    fn input_length_checked() {
        let mut r = rng();
        let w = random_bits(2, 4, 1);
        let mut mapped = CustBinaryMapped::program(&w, &XbarConfig::new(4, 8), &mut r).unwrap();
        assert!(matches!(
            mapped.execute(&BitVec::zeros(5), &mut r),
            Err(MappingError::InputLength { .. })
        ));
    }
}
