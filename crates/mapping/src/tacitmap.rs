//! Functional TacitMap: programs binary weight matrices onto 1T1R
//! crossbars in the paper's vertical layout and executes XNOR+popcount
//! through real analog VMM simulation.
//!
//! Layout (paper Fig. 2-(b)/Fig. 3-(b)): weight vector `Wⱼ` occupies
//! column `j`; its first `m` rows hold `Wⱼ` and the next `m` rows hold
//! `W̄ⱼ`. The input drive is `[In ; Īn]`. The column's AND-accumulation
//! then equals `popcount(In ⊙ Wⱼ)`, read in **one step** from the ADC.
//!
//! Layers larger than one crossbar are chunked: row chunks produce
//! additive partial popcounts (summed digitally), column chunks extend
//! the output range, and all chunks fire in the same step.

use crate::error::MappingError;
use eb_bitnn::{ops, BitMatrix, BitVec};
use eb_xbar::{CrossbarArray, VmmEngine, XbarConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ParallelSlice;

/// A binary weight matrix programmed onto crossbars in TacitMap layout.
///
/// # Examples
///
/// ```
/// use eb_mapping::TacitMapped;
/// use eb_bitnn::{ops, BitMatrix, BitVec};
/// use eb_xbar::XbarConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let weights = BitMatrix::from_fn(4, 6, |r, c| (r + c) % 2 == 0);
/// let mut mapped = TacitMapped::program(&weights, &XbarConfig::new(16, 8), &mut rng)?;
/// let input = BitVec::from_bools(&[true, false, true, true, false, true]);
/// let pops = mapped.execute(&input, &mut rng)?;
/// assert_eq!(pops, ops::binary_linear_popcounts(&input, &weights));
/// # Ok::<(), eb_mapping::MappingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TacitMapped {
    /// `engines[row_chunk][col_chunk]`.
    engines: Vec<Vec<VmmEngine>>,
    m: usize,
    n: usize,
    chunk_len: usize,
    cfg: XbarConfig,
    executions: u64,
    energy_j: f64,
}

/// Derives the fault-map seed for the chunk at `(rc, cc)`: each physical
/// array gets its own defect population while the whole map stays a pure
/// function of the profile's base seed.
fn chunk_fault_seed(base: u64, rc: usize, cc: usize) -> u64 {
    base ^ (((rc as u64) << 32) ^ cc as u64 ^ 0x5851_F42D_4C95_7F2D)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl TacitMapped {
    /// Programs `weights` (one weight vector per row, fan-in = columns)
    /// onto as many crossbars as the layout needs.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::EmptyWeights`] for an empty matrix,
    /// [`MappingError::CrossbarTooSmall`] when a crossbar cannot hold even
    /// one weight bit and its complement, or [`MappingError::Xbar`] when
    /// the config carries an invalid [`eb_xbar::FaultConfig`].
    pub fn program(
        weights: &BitMatrix,
        cfg: &XbarConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, MappingError> {
        if weights.rows() == 0 || weights.cols() == 0 {
            return Err(MappingError::EmptyWeights);
        }
        let chunk_len = cfg.tacitmap_chunk_rows();
        if chunk_len == 0 || cfg.cols == 0 {
            return Err(MappingError::CrossbarTooSmall {
                rows: cfg.rows,
                cols: cfg.cols,
            });
        }
        let m = weights.cols();
        let n = weights.rows();
        let row_chunks = m.div_ceil(chunk_len);
        let col_chunks = n.div_ceil(cfg.cols);
        let mut energy_j = 0.0;
        let mut engines = Vec::with_capacity(row_chunks);
        for rc in 0..row_chunks {
            let lo = rc * chunk_len;
            let hi = (lo + chunk_len).min(m);
            let len = hi - lo;
            let mut row = Vec::with_capacity(col_chunks);
            for cc in 0..col_chunks {
                let jlo = cc * cfg.cols;
                let jhi = (jlo + cfg.cols).min(n);
                // Build the [w ; w̄] column block for vectors jlo..jhi.
                let block = BitMatrix::from_fn(2 * len, jhi - jlo, |r, j| {
                    let w = weights.row(jlo + j);
                    if r < len {
                        w.get(lo + r) == Some(true)
                    } else {
                        w.get(lo + r - len) == Some(false)
                    }
                });
                let mut array = CrossbarArray::new(cfg.rows, cfg.cols, cfg.device.clone());
                if let Some(f) = &cfg.fault {
                    array
                        .set_fault_config(Some(f.with_seed(chunk_fault_seed(f.seed, rc, cc))))
                        .map_err(MappingError::Xbar)?;
                }
                array
                    .program_matrix(&block, rng)
                    .map_err(MappingError::Xbar)?;
                energy_j += cfg.energies.program_joules(array.write_count() as usize);
                row.push(VmmEngine::with_defaults(array));
            }
            engines.push(row);
        }
        Ok(Self {
            engines,
            m,
            n,
            chunk_len,
            cfg: cfg.clone(),
            executions: 0,
            energy_j,
        })
    }

    /// Rebuilds a mapping from previously exported state: the programmed
    /// engine grid plus the geometry and telemetry counters a prior
    /// [`TacitMapped::program`] produced. Restoring is not a re-program —
    /// no RNG draws happen and no write energy is charged; drift and fault
    /// state live inside each engine's [`CrossbarArray`] and travel with
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::EmptyWeights`] for zero dimensions,
    /// [`MappingError::CrossbarTooSmall`] when `cfg` cannot hold even one
    /// weight bit and its complement, or
    /// [`MappingError::Xbar`]([`eb_xbar::XbarError::DimensionMismatch`])
    /// when the engine grid does not match the chunk geometry `cfg`
    /// implies for an `n × m` weight matrix.
    pub fn from_parts(
        engines: Vec<Vec<VmmEngine>>,
        m: usize,
        n: usize,
        cfg: XbarConfig,
        executions: u64,
        energy_j: f64,
    ) -> Result<Self, MappingError> {
        if m == 0 || n == 0 {
            return Err(MappingError::EmptyWeights);
        }
        let chunk_len = cfg.tacitmap_chunk_rows();
        if chunk_len == 0 || cfg.cols == 0 {
            return Err(MappingError::CrossbarTooSmall {
                rows: cfg.rows,
                cols: cfg.cols,
            });
        }
        let row_chunks = m.div_ceil(chunk_len);
        let col_chunks = n.div_ceil(cfg.cols);
        let cells = engines.iter().map(Vec::len).sum::<usize>();
        let grid_ok = engines.len() == row_chunks
            && engines.iter().all(|row| row.len() == col_chunks)
            && engines
                .iter()
                .flatten()
                .all(|e| e.array().rows() == cfg.rows && e.array().cols() == cfg.cols);
        if !grid_ok {
            return Err(MappingError::Xbar(eb_xbar::XbarError::DimensionMismatch {
                what: "restored TacitMap engine grid",
                expected: row_chunks * col_chunks,
                got: cells,
            }));
        }
        Ok(Self {
            engines,
            m,
            n,
            chunk_len,
            cfg,
            executions,
            energy_j,
        })
    }

    /// Programmed crossbar engines in chunk-grid order,
    /// `[row_chunk][col_chunk]` — the export surface for snapshotting
    /// prepared state.
    pub fn engines(&self) -> &[Vec<VmmEngine>] {
        &self.engines
    }

    /// Mints a replica that **shares** this mapping's programmed cores:
    /// cloning the engine grid is an `Arc` bump per crossbar (see
    /// [`eb_xbar::CrossbarArray`]'s copy-on-write core), so no device is
    /// re-programmed and no RNG is drawn. Per-replica telemetry
    /// (executions, energy) starts at zero — programming energy stays
    /// charged on the original, once.
    pub fn replicate(&self) -> Self {
        Self {
            engines: self.engines.clone(),
            m: self.m,
            n: self.n,
            chunk_len: self.chunk_len,
            cfg: self.cfg.clone(),
            executions: 0,
            energy_j: 0.0,
        }
    }

    /// `true` when `self` and `other` read from the same programmed
    /// cores on every chunk — the replica weight-sharing invariant.
    pub fn shares_core_with(&self, other: &Self) -> bool {
        self.engines.len() == other.engines.len()
            && self.engines.iter().zip(&other.engines).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(ea, eb)| ea.array().shares_core_with(eb.array()))
            })
    }

    /// Approximate heap bytes of the shared programmed cores across all
    /// chunks — counted once however many replicas share them.
    pub fn core_bytes(&self) -> usize {
        self.engines
            .iter()
            .flatten()
            .map(|e| e.array().core_bytes())
            .sum()
    }

    /// Approximate heap bytes of this replica's private state (per-array
    /// rinds plus the grid scaffolding).
    pub fn rind_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .engines
                .iter()
                .flatten()
                .map(|e| e.array().rind_bytes())
                .sum::<usize>()
    }

    /// The crossbar configuration this mapping was programmed with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// Fan-in rows covered by each row chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Fan-in (weight-vector length).
    pub fn fan_in(&self) -> usize {
        self.m
    }

    /// Number of stored weight vectors.
    pub fn out_vectors(&self) -> usize {
        self.n
    }

    /// Crossbars occupied (the footprint).
    pub fn footprint(&self) -> usize {
        self.engines.iter().map(Vec::len).sum()
    }

    /// Crossbar steps taken so far (one per executed input vector — the
    /// paper's single-step XNOR+Popcount).
    pub fn steps_taken(&self) -> u64 {
        self.executions
    }

    /// Modeled energy spent so far in joules, from the config's
    /// [`eb_xbar::XbarEnergies`]: device programming at build time plus
    /// one [`eb_xbar::XbarEnergies::vmm_step_joules`] charge per crossbar
    /// activation (driven rows, conducting cells, ADC conversions).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Faulty cells across every crossbar this layer occupies (the
    /// serving runtime's fault telemetry).
    pub fn fault_count(&self) -> usize {
        self.engines
            .iter()
            .flatten()
            .map(|e| e.array().fault_count())
            .sum()
    }

    /// Resolves every subsequent read at drift time `t_ratio = t/t₀`,
    /// applied uniformly to all crossbars this layer occupies (values
    /// `≤ 1.0` mean no drift). Whether drift moves any count depends on
    /// the device model: with [`eb_xbar::DeviceParams::drift_nu`] `= 0`
    /// this is a no-op, which is why the serving runtime validates the
    /// device model before accepting a drift configuration.
    pub fn set_drift_t_ratio(&mut self, t_ratio: f64) {
        for row in &mut self.engines {
            for engine in row {
                engine.array_mut().set_drift_t_ratio(t_ratio);
            }
        }
    }

    /// Fan-in range `(lo, len)` covered by row chunk `rc`.
    fn chunk_bounds(&self, rc: usize) -> (usize, usize) {
        let lo = rc * self.chunk_len;
        let hi = (lo + self.chunk_len).min(self.m);
        (lo, hi - lo)
    }

    /// Builds the physical `[pos ; neg]` drive for one row chunk: the
    /// weight half occupies rows `0..len`, the complement half rows
    /// `len..2·len`, zero-padded to the crossbar height. This is the one
    /// place the TacitMap drive layout lives — both the single-vector and
    /// batched execution paths go through it.
    fn chunk_drive(&self, pos: &BitVec, neg: &BitVec, lo: usize, len: usize) -> BitVec {
        let mut drive = BitVec::zeros(self.cfg.rows);
        for i in 0..len {
            if pos.get(lo + i) == Some(true) {
                drive.set(i, true);
            }
            if neg.get(lo + i) == Some(true) {
                drive.set(len + i, true);
            }
        }
        drive
    }

    /// Executes one input vector: a single parallel crossbar activation
    /// across all chunks, returning `popcount(input ⊙ Wⱼ)` for every `j`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on fan-in mismatch.
    pub fn execute(
        &mut self,
        input: &BitVec,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, MappingError> {
        let complement = input.complement();
        self.execute_raw(input, &complement, rng)
    }

    /// Low-level activation with independent drives on the weight half
    /// (`pos`) and the complement half (`neg`) of each column.
    ///
    /// `execute(v)` equals `execute_raw(v, v̄)`. Bit-serial fixed-point
    /// layers instead drive `(plane, 0)` and `(0, plane)` to read
    /// `popcount(plane ∧ w)` and `popcount(plane ∧ w̄)` separately, whose
    /// difference is the signed bit-plane contribution `Σ plane_i·wᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] when either half's length
    /// differs from the fan-in.
    pub fn execute_raw(
        &mut self,
        pos: &BitVec,
        neg: &BitVec,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, MappingError> {
        if pos.len() != self.m || neg.len() != self.m {
            return Err(MappingError::InputLength {
                expected: self.m,
                got: if pos.len() != self.m {
                    pos.len()
                } else {
                    neg.len()
                },
            });
        }
        let mut acc = vec![0u32; self.n];
        let mut energy = 0.0;
        for (rc, row) in self.engines.iter().enumerate() {
            let (lo, len) = self.chunk_bounds(rc);
            let drive = self.chunk_drive(pos, neg, lo, len);
            let active = drive.popcount() as usize;
            for (cc, engine) in row.iter().enumerate() {
                let jlo = cc * self.cfg.cols;
                let jhi = (jlo + self.cfg.cols).min(self.n);
                let counts = engine
                    .vmm_counts_cols(&drive, 0, jhi - jlo, rng)
                    .map_err(MappingError::Xbar)?;
                energy +=
                    self.cfg
                        .energies
                        .vmm_step_joules(active, active * (jhi - jlo), jhi - jlo);
                for (j, c) in counts.into_iter().enumerate() {
                    acc[jlo + j] += c;
                }
            }
        }
        self.executions += 1;
        self.energy_j += energy;
        Ok(acc)
    }

    /// Executes a batch of input vectors, one crossbar activation per
    /// vector — a thin wrapper pairing each input with its complement and
    /// delegating to [`TacitMapped::execute_raw_batch`], the one batched
    /// execution path.
    ///
    /// In noiseless configurations this is bit-identical to calling
    /// [`TacitMapped::execute`] per input (under noise the counts are
    /// drawn from the same distribution, but the chunk-major draw order
    /// differs). Each engine resolves its devices once per batch instead
    /// of once per input.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on any fan-in mismatch.
    pub fn execute_batch(
        &mut self,
        inputs: &[BitVec],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        let complements: Vec<BitVec> = inputs.iter().map(BitVec::complement).collect();
        let pairs: Vec<(&BitVec, &BitVec)> = inputs.iter().zip(&complements).collect();
        self.execute_ref_pairs(&pairs, rng)
    }

    /// Batched form of [`TacitMapped::execute_raw`]: one crossbar
    /// activation per `(pos, neg)` half-drive pair, amortizing the
    /// periphery setup and device resolution across the whole batch
    /// ([`VmmEngine::vmm_counts_cols_batch`]). This is the single batched
    /// execution implementation — [`TacitMapped::execute_batch`] and the
    /// runtime sessions both bottom out here.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] when either half of any pair
    /// differs from the fan-in.
    pub fn execute_raw_batch(
        &mut self,
        pairs: &[(BitVec, BitVec)],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        let refs: Vec<(&BitVec, &BitVec)> = pairs.iter().map(|(p, n)| (p, n)).collect();
        self.execute_ref_pairs(&refs, rng)
    }

    /// Batched activation over *borrowed* `(pos, neg)` pairs — the
    /// allocation-light entry point for callers (the `eb-runtime`
    /// bit-serial lowering) that drive many pairs sharing common halves,
    /// e.g. `(plane, 0)` / `(0, plane)`, without cloning a `BitVec` per
    /// half. [`TacitMapped::execute_batch`] and
    /// [`TacitMapped::execute_raw_batch`] bottom out here.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] when either half of any pair
    /// differs from the fan-in.
    pub fn execute_ref_pairs(
        &mut self,
        pairs: &[(&BitVec, &BitVec)],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        self.check_pair_lengths(pairs)?;
        // With a deterministic periphery no call below draws from the
        // RNG, so the chunk walk can fan out across rayon workers and
        // still return bit-identical counts with the caller's RNG in an
        // identical position. Any noise source falls back to the
        // sequential walk, which preserves the draw order exactly.
        if self.footprint() > 1 && self.periphery_is_deterministic() {
            self.execute_pairs_parallel(pairs)
        } else {
            self.execute_pairs_sequential(pairs, rng)
        }
    }

    /// The sequential chunk walk — the RNG-order-defining reference
    /// implementation every other execution path must match. Public so
    /// equivalence tests can pin the parallel walk against it.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] when either half of any pair
    /// differs from the fan-in.
    pub fn execute_ref_pairs_sequential(
        &mut self,
        pairs: &[(&BitVec, &BitVec)],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        self.check_pair_lengths(pairs)?;
        self.execute_pairs_sequential(pairs, rng)
    }

    fn check_pair_lengths(&self, pairs: &[(&BitVec, &BitVec)]) -> Result<(), MappingError> {
        for (pos, neg) in pairs {
            if pos.len() != self.m || neg.len() != self.m {
                return Err(MappingError::InputLength {
                    expected: self.m,
                    got: if pos.len() != self.m {
                        pos.len()
                    } else {
                        neg.len()
                    },
                });
            }
        }
        Ok(())
    }

    /// `true` when no crossbar read or ADC conversion in this layer can
    /// draw from the RNG — the precondition for the parallel chunk walk.
    pub fn periphery_is_deterministic(&self) -> bool {
        self.engines
            .iter()
            .flatten()
            .all(VmmEngine::periphery_is_deterministic)
    }

    fn execute_pairs_sequential(
        &mut self,
        pairs: &[(&BitVec, &BitVec)],
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        let mut acc = vec![vec![0u32; self.n]; pairs.len()];
        let mut energy = 0.0;
        for (rc, row) in self.engines.iter().enumerate() {
            let (lo, len) = self.chunk_bounds(rc);
            let drives: Vec<BitVec> = pairs
                .iter()
                .map(|(pos, neg)| self.chunk_drive(pos, neg, lo, len))
                .collect();
            // vmm_step_joules is linear in each argument, so the whole
            // batch's charge collapses into one call on the summed rows.
            let active: usize = drives.iter().map(|d| d.popcount() as usize).sum();
            for (cc, engine) in row.iter().enumerate() {
                let jlo = cc * self.cfg.cols;
                let jhi = (jlo + self.cfg.cols).min(self.n);
                let counts = engine
                    .vmm_counts_cols_batch(&drives, 0, jhi - jlo, rng)
                    .map_err(MappingError::Xbar)?;
                energy += self.cfg.energies.vmm_step_joules(
                    active,
                    active * (jhi - jlo),
                    drives.len() * (jhi - jlo),
                );
                for (k, input_counts) in counts.into_iter().enumerate() {
                    for (j, c) in input_counts.into_iter().enumerate() {
                        acc[k][jlo + j] += c;
                    }
                }
            }
        }
        self.executions += pairs.len() as u64;
        self.energy_j += energy;
        Ok(acc)
    }

    /// Parallel chunk walk: every `(row_chunk, col_chunk)` crossbar fires
    /// on a rayon worker. Only reachable with a deterministic periphery
    /// ([`TacitMapped::periphery_is_deterministic`]), where the engines
    /// read from their memoised conductance snapshots and never touch an
    /// RNG — so the counts are bit-identical to the sequential walk and
    /// the partial-popcount reduction (u32 additions) is order-exact.
    /// The energy reduction runs sequentially in chunk-major order, the
    /// same order the sequential walk sums in.
    fn execute_pairs_parallel(
        &mut self,
        pairs: &[(&BitVec, &BitVec)],
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        let row_chunks = self.engines.len();
        let mut drives_by_rc = Vec::with_capacity(row_chunks);
        for rc in 0..row_chunks {
            let (lo, len) = self.chunk_bounds(rc);
            let drives: Vec<BitVec> = pairs
                .iter()
                .map(|(pos, neg)| self.chunk_drive(pos, neg, lo, len))
                .collect();
            drives_by_rc.push(drives);
        }
        let tasks: Vec<(usize, usize)> = (0..row_chunks)
            .flat_map(|rc| (0..self.engines[rc].len()).map(move |cc| (rc, cc)))
            .collect();
        let chunk_counts: Result<Vec<Vec<Vec<u32>>>, MappingError> = tasks
            .par_iter()
            .map(|&(rc, cc)| {
                let jlo = cc * self.cfg.cols;
                let jhi = (jlo + self.cfg.cols).min(self.n);
                // The deterministic periphery never draws, so a throwaway
                // per-worker RNG satisfies the signature without
                // perturbing the caller's stream.
                let mut scratch = StdRng::seed_from_u64(0);
                self.engines[rc][cc]
                    .vmm_counts_cols_batch(&drives_by_rc[rc], 0, jhi - jlo, &mut scratch)
                    .map_err(MappingError::Xbar)
            })
            .collect();
        let chunk_counts = chunk_counts?;

        let mut acc = vec![vec![0u32; self.n]; pairs.len()];
        let mut energy = 0.0;
        for (&(rc, cc), counts) in tasks.iter().zip(chunk_counts) {
            let jlo = cc * self.cfg.cols;
            let jhi = (jlo + self.cfg.cols).min(self.n);
            let active: usize = drives_by_rc[rc].iter().map(|d| d.popcount() as usize).sum();
            energy += self.cfg.energies.vmm_step_joules(
                active,
                active * (jhi - jlo),
                pairs.len() * (jhi - jlo),
            );
            for (k, input_counts) in counts.into_iter().enumerate() {
                for (j, c) in input_counts.into_iter().enumerate() {
                    acc[k][jlo + j] += c;
                }
            }
        }
        self.executions += pairs.len() as u64;
        self.energy_j += energy;
        Ok(acc)
    }

    /// Programs `weights` with a freshly seeded RNG and returns a mapping
    /// that **owns** that RNG for all subsequent executions — the
    /// convenience constructor the `eb-runtime` sessions are built on.
    /// Two mappings programmed from the same `(weights, cfg, seed)`
    /// produce identical execution sequences, noisy devices included.
    ///
    /// # Errors
    ///
    /// Same as [`TacitMapped::program`].
    pub fn program_seeded(
        weights: &BitMatrix,
        cfg: &XbarConfig,
        seed: u64,
    ) -> Result<SeededTacitMapped, MappingError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let inner = Self::program(weights, cfg, &mut rng)?;
        Ok(SeededTacitMapped { inner, rng })
    }

    /// Reference check: executes and compares against the software kernel.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::Mismatch`] when any column disagrees with
    /// [`ops::binary_linear_popcounts`] (expected only under injected
    /// noise).
    pub fn execute_verified(
        &mut self,
        input: &BitVec,
        weights: &BitMatrix,
        rng: &mut impl Rng,
    ) -> Result<Vec<u32>, MappingError> {
        let got = self.execute(input, rng)?;
        let want = ops::binary_linear_popcounts(input, weights);
        if got != want {
            return Err(MappingError::Mismatch {
                mapping: "TacitMap",
            });
        }
        Ok(got)
    }
}

/// A [`TacitMapped`] layer that owns its RNG: programmed and executed from
/// one seeded [`StdRng`], so callers never thread `&mut impl Rng` through
/// the serving path. Built via [`TacitMapped::program_seeded`].
///
/// Determinism contract: two instances created from identical
/// `(weights, cfg, seed)` and driven with identical call sequences return
/// identical counts — including under programming/read/ADC noise.
#[derive(Debug, Clone)]
pub struct SeededTacitMapped {
    inner: TacitMapped,
    rng: StdRng,
}

impl SeededTacitMapped {
    /// Executes one input vector (see [`TacitMapped::execute`]).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on fan-in mismatch.
    pub fn execute(&mut self, input: &BitVec) -> Result<Vec<u32>, MappingError> {
        self.inner.execute(input, &mut self.rng)
    }

    /// Low-level activation with independent half drives (see
    /// [`TacitMapped::execute_raw`]).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on fan-in mismatch.
    pub fn execute_raw(&mut self, pos: &BitVec, neg: &BitVec) -> Result<Vec<u32>, MappingError> {
        self.inner.execute_raw(pos, neg, &mut self.rng)
    }

    /// Batched execution (see [`TacitMapped::execute_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on any fan-in mismatch.
    pub fn execute_batch(&mut self, inputs: &[BitVec]) -> Result<Vec<Vec<u32>>, MappingError> {
        self.inner.execute_batch(inputs, &mut self.rng)
    }

    /// Batched half-drive execution (see
    /// [`TacitMapped::execute_raw_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on any fan-in mismatch.
    pub fn execute_raw_batch(
        &mut self,
        pairs: &[(BitVec, BitVec)],
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        self.inner.execute_raw_batch(pairs, &mut self.rng)
    }

    /// Batched activation over borrowed half-drive pairs (see
    /// [`TacitMapped::execute_ref_pairs`]).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InputLength`] on any fan-in mismatch.
    pub fn execute_ref_pairs(
        &mut self,
        pairs: &[(&BitVec, &BitVec)],
    ) -> Result<Vec<Vec<u32>>, MappingError> {
        self.inner.execute_ref_pairs(pairs, &mut self.rng)
    }

    /// Rebuilds a seeded mapping from previously exported state: the
    /// restored inner mapping plus the RNG snapshot
    /// ([`SeededTacitMapped::rng_state`]) taken at export time, so the
    /// next noisy draw continues exactly where the exported instance left
    /// off.
    pub fn from_parts(inner: TacitMapped, rng_state: [u64; 4]) -> Self {
        Self {
            inner,
            rng: StdRng::from_state(rng_state),
        }
    }

    /// Snapshot of the owned RNG's position in its stream, for
    /// serializing the mapping mid-stream (see
    /// [`SeededTacitMapped::from_parts`]).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Mints a replica sharing this mapping's programmed cores (see
    /// [`TacitMapped::replicate`]) with a fresh execution RNG seeded at
    /// `seed`. The replica reads the *same* programmed conductances but
    /// draws its own noise stream — the shared-weight replica contract.
    pub fn replicate(&self, seed: u64) -> Self {
        Self {
            inner: self.inner.replicate(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `true` when both mappings read from the same programmed cores
    /// (see [`TacitMapped::shares_core_with`]).
    pub fn shares_core_with(&self, other: &Self) -> bool {
        self.inner.shares_core_with(&other.inner)
    }

    /// Approximate heap bytes of the shared programmed cores (see
    /// [`TacitMapped::core_bytes`]).
    pub fn core_bytes(&self) -> usize {
        self.inner.core_bytes()
    }

    /// Approximate heap bytes of this replica's private state (see
    /// [`TacitMapped::rind_bytes`]).
    pub fn rind_bytes(&self) -> usize {
        self.inner.rind_bytes()
    }

    /// The underlying mapping (fan-in, footprint, step counters...).
    pub fn inner(&self) -> &TacitMapped {
        &self.inner
    }

    /// Resolves every subsequent read at drift time `t_ratio = t/t₀` (see
    /// [`TacitMapped::set_drift_t_ratio`]).
    pub fn set_drift_t_ratio(&mut self, t_ratio: f64) {
        self.inner.set_drift_t_ratio(t_ratio);
    }

    /// Crossbar steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.inner.steps_taken()
    }

    /// Modeled energy spent so far in joules (see
    /// [`TacitMapped::energy_j`]).
    pub fn energy_j(&self) -> f64 {
        self.inner.energy_j()
    }

    /// Faulty cells across every occupied crossbar (see
    /// [`TacitMapped::fault_count`]).
    pub fn fault_count(&self) -> usize {
        self.inner.fault_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn random_bits(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        BitMatrix::from_fn(rows, cols, |r, c| {
            seed.wrapping_mul((r * cols + c) as u64 + 11)
                .is_multiple_of(3)
        })
    }

    #[test]
    fn single_crossbar_exact() {
        let mut r = rng();
        let w = random_bits(8, 16, 5);
        let mut mapped = TacitMapped::program(&w, &XbarConfig::new(64, 16), &mut r).unwrap();
        assert_eq!(mapped.footprint(), 1);
        for seed in 0..5u64 {
            let input = BitVec::from_bools(
                &(0..16)
                    .map(|i| (i as u64 * seed) % 4 < 2)
                    .collect::<Vec<_>>(),
            );
            let got = mapped.execute(&input, &mut r).unwrap();
            assert_eq!(got, ops::binary_linear_popcounts(&input, &w));
        }
        assert_eq!(mapped.steps_taken(), 5);
    }

    #[test]
    fn row_chunked_layer_exact() {
        // fan-in 100 on a 64-row crossbar (chunk 32): 4 row chunks.
        let mut r = rng();
        let w = random_bits(10, 100, 9);
        let cfg = XbarConfig::new(64, 16);
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        assert_eq!(mapped.footprint(), 4);
        let input = BitVec::from_bools(&(0..100).map(|i| i % 3 != 1).collect::<Vec<_>>());
        let got = mapped.execute(&input, &mut r).unwrap();
        assert_eq!(got, ops::binary_linear_popcounts(&input, &w));
    }

    #[test]
    fn col_chunked_layer_exact() {
        // 40 outputs on 16-column crossbars: 3 column chunks.
        let mut r = rng();
        let w = random_bits(40, 20, 13);
        let cfg = XbarConfig::new(64, 16);
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        assert_eq!(mapped.footprint(), 3);
        let input = BitVec::from_bools(&(0..20).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let got = mapped.execute_verified(&input, &w, &mut r).unwrap();
        assert_eq!(got.len(), 40);
    }

    #[test]
    fn both_dimensions_chunked_exact() {
        let mut r = rng();
        let w = random_bits(37, 75, 17);
        let cfg = XbarConfig::new(32, 16); // chunk 16 rows, 16 cols
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        assert_eq!(mapped.footprint(), 5 * 3);
        let input = BitVec::from_bools(&(0..75).map(|i| (i * 7) % 5 < 3).collect::<Vec<_>>());
        let got = mapped.execute(&input, &mut r).unwrap();
        assert_eq!(got, ops::binary_linear_popcounts(&input, &w));
    }

    #[test]
    fn execute_raw_splits_pos_neg() {
        // popcount(p ∧ w) via (p, 0) and popcount(p ∧ w̄) via (0, p): the
        // difference is the signed binary-weighted sum Σ pᵢ·wᵢ (w ∈ ±1).
        let mut r = rng();
        let w = random_bits(5, 40, 23);
        let cfg = XbarConfig::new(32, 8);
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        let p = BitVec::from_bools(&(0..40).map(|i| i % 4 == 0).collect::<Vec<_>>());
        let zero = BitVec::zeros(40);
        let plus = mapped.execute_raw(&p, &zero, &mut r).unwrap();
        let minus = mapped.execute_raw(&zero, &p, &mut r).unwrap();
        for j in 0..5 {
            let expect: i32 = (0..40)
                .map(|i| {
                    if p.get(i) == Some(true) {
                        if w.get(j, i) == Some(true) {
                            1
                        } else {
                            -1
                        }
                    } else {
                        0
                    }
                })
                .sum();
            assert_eq!(plus[j] as i32 - minus[j] as i32, expect, "output {j}");
        }
    }

    #[test]
    fn execute_batch_matches_per_input_execution() {
        let mut r = rng();
        // Chunked in both dimensions so the batch path crosses chunk
        // boundaries.
        let w = random_bits(37, 75, 17);
        let cfg = XbarConfig::new(32, 16);
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        let inputs: Vec<BitVec> = (0..6)
            .map(|k| BitVec::from_bools(&(0..75).map(|i| (i * 7 + k) % 5 < 3).collect::<Vec<_>>()))
            .collect();
        let batch = mapped.execute_batch(&inputs, &mut r).unwrap();
        for (k, input) in inputs.iter().enumerate() {
            assert_eq!(
                batch[k],
                ops::binary_linear_popcounts(input, &w),
                "input {k}"
            );
        }
        assert_eq!(mapped.steps_taken(), 6);
        assert!(matches!(
            mapped.execute_batch(&[BitVec::zeros(9)], &mut r),
            Err(MappingError::InputLength { .. })
        ));
    }

    #[test]
    fn execute_raw_batch_matches_sequential_raw() {
        let mut r = rng();
        let w = random_bits(11, 45, 29);
        let cfg = XbarConfig::new(32, 8);
        let mut mapped = TacitMapped::program(&w, &cfg, &mut r).unwrap();
        let zero = BitVec::zeros(45);
        let pairs: Vec<(BitVec, BitVec)> = (0..4)
            .map(|k| {
                let p =
                    BitVec::from_bools(&(0..45).map(|i| (i * 3 + k) % 4 == 0).collect::<Vec<_>>());
                if k % 2 == 0 {
                    (p, zero.clone())
                } else {
                    (zero.clone(), p)
                }
            })
            .collect();
        let batch = mapped.execute_raw_batch(&pairs, &mut r).unwrap();
        for (k, (p, n)) in pairs.iter().enumerate() {
            assert_eq!(
                batch[k],
                mapped.execute_raw(p, n, &mut r).unwrap(),
                "pair {k}"
            );
        }
        assert!(matches!(
            mapped.execute_raw_batch(&[(BitVec::zeros(3), zero)], &mut r),
            Err(MappingError::InputLength { .. })
        ));
    }

    #[test]
    fn seeded_mapping_is_deterministic_under_noise() {
        use eb_xbar::DeviceParams;
        let w = random_bits(16, 48, 31);
        let cfg = XbarConfig::new(64, 16).with_device(DeviceParams {
            program_sigma: 0.25,
            read_sigma: 0.08,
            ..DeviceParams::ideal()
        });
        let input = BitVec::from_bools(&(0..48).map(|i| i % 3 != 0).collect::<Vec<_>>());
        let run = |seed: u64| {
            let mut mapped = TacitMapped::program_seeded(&w, &cfg, seed).unwrap();
            let mut outs = Vec::new();
            for _ in 0..4 {
                outs.push(mapped.execute(&input).unwrap());
            }
            outs.push(
                mapped
                    .execute_batch(&[input.clone(), input.complement()])
                    .unwrap()[0]
                    .clone(),
            );
            outs
        };
        // Same seed => identical noisy counts; different seed => diverges.
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let seeded = TacitMapped::program_seeded(&w, &cfg, 7).unwrap();
        assert_eq!(seeded.inner().fan_in(), 48);
    }

    #[test]
    fn drift_propagates_to_every_chunk() {
        use eb_xbar::DeviceParams;
        // Low on/off ratio: off-current is ~0.4 LSB per cell, so drifting
        // the amorphous state visibly changes the accumulated counts.
        let cfg = XbarConfig::new(32, 8).with_device(DeviceParams {
            g_on: 100e-6,
            g_off: 40e-6,
            drift_nu: 0.3,
            ..DeviceParams::ideal()
        });
        let w = random_bits(11, 45, 29); // chunked in rows and cols
        let input = BitVec::from_bools(&(0..45).map(|i| i % 3 != 1).collect::<Vec<_>>());
        let mut fresh = TacitMapped::program_seeded(&w, &cfg, 4).unwrap();
        let mut drifted = TacitMapped::program_seeded(&w, &cfg, 4).unwrap();
        drifted.set_drift_t_ratio(1e6);
        assert_ne!(
            fresh.execute(&input).unwrap(),
            drifted.execute(&input).unwrap()
        );
        // At the paper's binary operating point (1000x on/off ratio) the
        // same drift is benign: counts stay exact despite t/t₀ = 10⁶.
        let robust = XbarConfig::new(32, 8).with_device(DeviceParams {
            drift_nu: 0.3,
            ..DeviceParams::ideal()
        });
        let mut mapped = TacitMapped::program_seeded(&w, &robust, 4).unwrap();
        mapped.set_drift_t_ratio(1e6);
        assert_eq!(
            mapped.execute(&input).unwrap(),
            ops::binary_linear_popcounts(&input, &w)
        );
    }

    #[test]
    fn parallel_walk_matches_sequential_walk_and_leaves_rng_alone() {
        // Chunked in both dimensions so the parallel path genuinely fans
        // out over multiple crossbars.
        let w = random_bits(37, 75, 17);
        let cfg = XbarConfig::new(32, 16);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let mut par = TacitMapped::program(&w, &cfg, &mut r1).unwrap();
        let mut seq = TacitMapped::program(&w, &cfg, &mut r2).unwrap();
        assert!(par.periphery_is_deterministic());
        let inputs: Vec<BitVec> = (0..5)
            .map(|k| BitVec::from_bools(&(0..75).map(|i| (i * 3 + k) % 4 != 0).collect::<Vec<_>>()))
            .collect();
        let complements: Vec<BitVec> = inputs.iter().map(BitVec::complement).collect();
        let refs: Vec<(&BitVec, &BitVec)> = inputs.iter().zip(&complements).collect();
        let got_par = par.execute_ref_pairs(&refs, &mut r1).unwrap();
        let got_seq = seq.execute_ref_pairs_sequential(&refs, &mut r2).unwrap();
        assert_eq!(got_par, got_seq);
        assert_eq!(par.energy_j(), seq.energy_j(), "energy must be order-exact");
        assert_eq!(par.steps_taken(), seq.steps_taken());
        // Neither walk drew from the RNG: both streams sit identically.
        assert_eq!(r1.state(), r2.state());
    }

    #[test]
    fn replicas_share_cores_and_own_their_noise_streams() {
        use eb_xbar::DeviceParams;
        let w = random_bits(16, 48, 31);
        let noisy = XbarConfig::new(64, 16).with_device(DeviceParams {
            program_sigma: 0.25,
            read_sigma: 0.08,
            ..DeviceParams::ideal()
        });
        let input = BitVec::from_bools(&(0..48).map(|i| i % 3 != 0).collect::<Vec<_>>());
        let base = TacitMapped::program_seeded(&w, &noisy, 7).unwrap();
        let mut a = base.replicate(100);
        let mut b = base.replicate(100);
        let mut c = base.replicate(101);
        assert!(base.shares_core_with(&a) && a.shares_core_with(&b) && b.shares_core_with(&c));
        assert_eq!(a.steps_taken(), 0, "replica telemetry starts fresh");
        assert_eq!(
            a.energy_j(),
            0.0,
            "programming energy stays on the original"
        );
        // Same replica seed => identical noisy stream; different => not.
        let out_a: Vec<_> = (0..3).map(|_| a.execute(&input).unwrap()).collect();
        let out_b: Vec<_> = (0..3).map(|_| b.execute(&input).unwrap()).collect();
        let out_c: Vec<_> = (0..3).map(|_| c.execute(&input).unwrap()).collect();
        assert_eq!(out_a, out_b);
        assert_ne!(out_a, out_c);
        // In the ideal profile a replica reads the very same programmed
        // bits: outputs equal the software reference, like the original.
        let ideal = TacitMapped::program_seeded(&w, &XbarConfig::new(64, 16), 7).unwrap();
        let mut rep = ideal.replicate(42);
        assert_eq!(
            rep.execute(&input).unwrap(),
            ops::binary_linear_popcounts(&input, &w)
        );
        // Shared cores dominate the footprint; rinds stay small.
        assert_eq!(ideal.core_bytes(), rep.core_bytes());
        assert!(rep.rind_bytes() < rep.core_bytes());
    }

    #[test]
    fn input_length_checked() {
        let mut r = rng();
        let w = random_bits(4, 8, 1);
        let mut mapped = TacitMapped::program(&w, &XbarConfig::new(32, 8), &mut r).unwrap();
        assert!(matches!(
            mapped.execute(&BitVec::zeros(9), &mut r),
            Err(MappingError::InputLength { .. })
        ));
    }

    #[test]
    fn empty_weights_rejected() {
        let mut r = rng();
        assert!(matches!(
            TacitMapped::program(&BitMatrix::zeros(0, 0), &XbarConfig::default(), &mut r),
            Err(MappingError::EmptyWeights)
        ));
    }

    #[test]
    fn energy_accrues_with_programming_and_execution() {
        let mut r = rng();
        let w = random_bits(10, 40, 3);
        let mut mapped = TacitMapped::program(&w, &XbarConfig::new(32, 16), &mut r).unwrap();
        let programmed = mapped.energy_j();
        assert!(programmed > 0.0, "programming must cost energy");
        let input = BitVec::from_bools(&(0..40).map(|i| i % 2 == 0).collect::<Vec<_>>());
        mapped.execute(&input, &mut r).unwrap();
        let one = mapped.energy_j();
        assert!(one > programmed);
        // The batched path charges the same energy as per-input execution.
        let mut batched = TacitMapped::program(&w, &XbarConfig::new(32, 16), &mut r).unwrap();
        batched
            .execute_batch(&[input.clone(), input.clone()], &mut r)
            .unwrap();
        let mut single = TacitMapped::program(&w, &XbarConfig::new(32, 16), &mut r).unwrap();
        single.execute(&input, &mut r).unwrap();
        single.execute(&input, &mut r).unwrap();
        assert!((batched.energy_j() - single.energy_j()).abs() < 1e-18);
    }

    #[test]
    fn vacuous_fault_profile_is_bit_exact_and_free() {
        use eb_xbar::FaultConfig;
        let w = random_bits(17, 50, 19);
        let plain = XbarConfig::new(32, 8);
        let faulted = plain.clone().with_fault(FaultConfig::none().with_seed(99));
        let input = BitVec::from_bools(&(0..50).map(|i| i % 3 != 1).collect::<Vec<_>>());
        let mut a = TacitMapped::program_seeded(&w, &plain, 5).unwrap();
        let mut b = TacitMapped::program_seeded(&w, &faulted, 5).unwrap();
        assert_eq!(a.execute(&input).unwrap(), b.execute(&input).unwrap());
        assert_eq!(b.inner().fault_count(), 0);
    }

    #[test]
    fn dead_cells_degrade_counts_deterministically() {
        use eb_xbar::FaultConfig;
        let w = random_bits(17, 50, 19);
        let cfg = XbarConfig::new(32, 8).with_fault(FaultConfig::dead_cells(0.4, 7));
        let input = BitVec::from_bools(&(0..50).map(|i| i % 3 != 1).collect::<Vec<_>>());
        let run = |seed: u64| {
            let mut m = TacitMapped::program_seeded(&w, &cfg, seed).unwrap();
            (m.execute(&input).unwrap(), m.inner().fault_count())
        };
        let (counts, faults) = run(5);
        assert!(faults > 0, "40% dead cells must hit some of 32×8×15 chunks");
        assert_ne!(
            counts,
            ops::binary_linear_popcounts(&input, &w),
            "heavy dead-cell population must move the popcounts"
        );
        // Same programming seed + same fault profile replays exactly.
        assert_eq!(run(5), run(5));
        // A different fault seed moves different cells.
        let other = XbarConfig::new(32, 8).with_fault(FaultConfig::dead_cells(0.4, 8));
        let mut m = TacitMapped::program_seeded(&w, &other, 5).unwrap();
        assert_ne!(m.execute(&input).unwrap(), counts);
    }

    #[test]
    fn chunks_receive_distinct_fault_maps() {
        use eb_xbar::FaultConfig;
        // One fault profile over a 4-chunk layer: if every chunk shared the
        // seed, all chunks would kill identical (r, c) offsets. Distinct
        // derived seeds make that vanishingly unlikely.
        let w = random_bits(10, 100, 9);
        let cfg = XbarConfig::new(64, 16).with_fault(FaultConfig::dead_cells(0.1, 42));
        let mapped = TacitMapped::program_seeded(&w, &cfg, 1).unwrap();
        let maps: Vec<Vec<(usize, usize)>> = mapped
            .inner()
            .engines
            .iter()
            .flatten()
            .map(|e| {
                let a = e.array();
                (0..a.rows())
                    .flat_map(|r| (0..a.cols()).map(move |c| (r, c)))
                    .filter(|&(r, c)| a.cell_fault(r, c).is_some())
                    .collect()
            })
            .collect();
        assert_eq!(maps.len(), 4);
        assert!(
            maps.windows(2).any(|w| w[0] != w[1]),
            "chunk fault maps must differ"
        );
    }

    #[test]
    fn invalid_fault_profile_rejected_at_program() {
        use eb_xbar::FaultConfig;
        let mut r = rng();
        let w = random_bits(4, 8, 1);
        let cfg = XbarConfig::new(32, 8).with_fault(FaultConfig::dead_cells(1.5, 0));
        assert!(matches!(
            TacitMapped::program(&w, &cfg, &mut r),
            Err(MappingError::Xbar(_))
        ));
    }
}
